// A virtual machine: vCPUs (TLB + PEBS + virtual clock), a guest kernel,
// and an EPT, wired to host tiered memory through the owning Hypervisor.
//
// The VM exposes the three primitives every TMM design builds on:
//   * ExecuteAccess  — one guest memory access through 2D translation, with
//     lazy guest-fault and EPT-fault handling and tier latency charging
//   * MovePage       — guest-initiated page migration between NUMA nodes
//     (allocate-copy-remap, single-gVA TLB shootdowns)
//   * SwapPages      — Demeter's balanced relocation primitive: exchange the
//     physical placement of two virtual pages with no allocation (§3.2.3)
// plus host-side migration hooks used by hypervisor-based baselines.

#ifndef DEMETER_SRC_HYPER_VM_H_
#define DEMETER_SRC_HYPER_VM_H_

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/base/histogram.h"
#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/guest/kernel.h"
#include "src/guest/process.h"
#include "src/mem/host_memory.h"
#include "src/mmu/page_table.h"
#include "src/mmu/tlb.h"
#include "src/mmu/walker.h"
#include "src/pebs/pebs.h"
#include "src/sim/cpu_account.h"
#include "src/sim/sim_clock.h"
#include "src/telemetry/metrics.h"
#include "src/workloads/workload.h"

namespace demeter {

class Hypervisor;
class SwapDevice;

struct VmConfig {
  int id = 0;
  int num_vcpus = 4;
  uint64_t total_memory_bytes = 256 * kMiB;
  double fmem_ratio = 0.2;  // FMEM share of total (the paper's default 1:5).
  Nanos context_switch_period = 4 * kMillisecond;
  PebsConfig pebs;
  MmuCosts mmu_costs;
  // Probability an access is served by the CPU cache hierarchy (never
  // reaches memory; latency kL2HitLatencyNs). Workload-dependent.
  double cache_hit_rate = 0.2;
  bool lazily_backed = true;  // EPT populated on first touch (overcommit).
  // When true, both NUMA nodes boot at 100% of total memory (the Demeter
  // balloon configuration, §3.3): a provisioner must balloon them down to
  // the desired composition. When false, nodes boot at fmem/smem sizes.
  bool start_full = false;
  uint64_t rng_seed = 0x5eed;

  uint64_t total_pages() const { return total_memory_bytes / kPageSize; }
  uint64_t fmem_pages() const {
    return static_cast<uint64_t>(fmem_ratio * static_cast<double>(total_pages()));
  }
  uint64_t smem_pages() const { return total_pages() - fmem_pages(); }
};

struct Vcpu {
  int id = 0;
  SimClock clock_ns;  // Local virtual time (compensated; reads as double).
  Tlb tlb;
  std::unique_ptr<PebsUnit> pebs;
  uint64_t accesses = 0;
  Nanos next_context_switch = 0;

  Nanos now() const { return clock_ns.now(); }
};

struct VmStats {
  uint64_t accesses = 0;
  uint64_t writes = 0;
  uint64_t cache_hits = 0;
  uint64_t guest_faults = 0;
  uint64_t ept_faults = 0;
  uint64_t fmem_accesses = 0;
  uint64_t smem_accesses = 0;
  // Far-tier traffic; forever zero on two-tier hosts (and the counters are
  // only registered when the host has a swap device).
  uint64_t swap_accesses = 0;  // Served in place from kSwapTier (no room up).
  uint64_t swap_ins = 0;       // Major faults: page promoted out of swap.
  uint64_t pages_promoted = 0;  // Into node 0.
  uint64_t pages_demoted = 0;   // Out of node 0.
  uint64_t context_switches = 0;
  double total_access_ns = 0.0;
};

struct AccessResult {
  double ns = 0.0;
  bool cache_hit = false;
  TierIndex tier = kFmemTier;
};

// One executed op of a batch: its cost and the vCPU clock right after the
// op landed (already truncated to integer Nanos, i.e. what vcpu.now()
// returned at that instant). The harness replays its per-op transaction
// accounting from these without re-entering the VM.
struct BatchStep {
  double ns = 0.0;
  Nanos clock_after = 0;
};

class Vm {
 public:
  Vm(const VmConfig& config, Hypervisor* host);

  const VmConfig& config() const { return config_; }
  int id() const { return config_.id; }

  // The workload's cache behaviour is only known once the harness pairs a
  // workload with the VM, after construction; everything else in VmConfig
  // stays immutable (this replaces a const_cast in the harness).
  void set_cache_hit_rate(double rate) { config_.cache_hit_rate = rate; }

  GuestKernel& kernel() { return *kernel_; }
  PageTable& ept() { return ept_; }
  Hypervisor& host() { return *host_; }

  int num_vcpus() const { return static_cast<int>(vcpus_.size()); }
  Vcpu& vcpu(int i) { return *vcpus_[static_cast<size_t>(i)]; }
  const Vcpu& vcpu(int i) const { return *vcpus_[static_cast<size_t>(i)]; }

  VmStats& stats() { return stats_; }
  const VmStats& stats() const { return stats_; }
  Rng& rng() { return rng_; }

  // Lifecycle: a departed VM executes nothing and is skipped by host-side
  // scans (its Vm object outlives the guest so late events stay safe).
  bool departed() const { return departed_; }
  void set_departed(bool departed) { departed_ = departed; }

  // Executes one memory access by `vcpu_id` in `process` at address `gva`.
  // Handles guest and EPT faults inline. The caller advances the vCPU clock
  // by the returned cost.
  AccessResult ExecuteAccess(int vcpu_id, GuestProcess& process, uint64_t gva, bool is_write);

  // Executes `ops` front to back on `vcpu_id`, advancing the vCPU clock
  // after each op (the scalar caller's `clock_ns += r.ns`) and recording
  // each op's cost + post-op clock into steps[k]. Stops early — always
  // after at least one op — once the clock reaches `stop_at_ns` (the
  // caller's next horizon: quantum end or context-switch tick, whichever
  // comes first). Returns the number of ops executed; `steps` must have
  // room for ops.size() entries.
  //
  // Observable behaviour (stats, RNG draws, TLB/PEBS/tier state, costs) is
  // bit-identical to calling ExecuteAccess op by op. Batching adds one
  // private speedup: consecutive non-cache-hit accesses to the same page
  // coalesce into a run whose TLB probe and dirty micro-walk happen once
  // (see ExecuteAccessImpl's memo) — a pure execution-strategy change that
  // the batched-vs-scalar property test locks in.
  size_t ExecuteBatch(int vcpu_id, GuestProcess& process, std::span<const AccessOp> ops,
                      double stop_at_ns, BatchStep* steps);

  // ---- TLB shootdowns ----------------------------------------------------
  // Single-address invalidation on every vCPU (guest-side IPI shootdown).
  void FlushGvaAll(PageNum vpn);
  // Full invalidation on every vCPU (invept; the only option available to
  // hypervisor-side designs, which lack the gVA).
  void FullFlushAll();
  TlbStats AggregateTlbStats() const;
  // Cost of the flush instructions themselves (one per vCPU).
  double SingleFlushCost() const;
  double FullFlushCost() const;

  // ---- Guest-side migration ----------------------------------------------
  // Moves vpn's backing page to `dst_node` via allocate-copy-remap.
  // Fails (false) when the destination node has no free page and
  // `allow_fallback` is false. Accumulates CPU cost into *cost_ns.
  bool MovePage(GuestProcess& process, PageNum vpn, int dst_node, Nanos now, double* cost_ns);

  // Balanced swap: exchanges physical placement (and contents) of two
  // mapped virtual pages, with no page allocation. Both pages end up with
  // their original data at their original gVA, in the other page's node.
  bool SwapPages(GuestProcess& proc_a, PageNum vpn_a, GuestProcess& proc_b, PageNum vpn_b,
                 Nanos now, double* cost_ns);

  // NUMA node of the page backing vpn, or -1 when unmapped.
  int NodeOfVpn(const GuestProcess& process, PageNum vpn) const;

  // Per-VM management-CPU account (all TMM policy work).
  CpuAccount& mgmt_account() { return mgmt_account_; }

  // Distribution of 2D-walk MMU costs for TLB misses (the walker's
  // per-level touch costs aggregate here; full-flush refills show up as the
  // cold-walk tail).
  const Histogram& walk_cost_histogram() const { return walk_cost_ns_; }

  // Registers this VM's counters under `scope` (the harness passes
  // "vm<id>"): VmStats, per-vCPU TLB and PEBS stats plus TLB aggregates,
  // guest-kernel stats, per-stage management CPU time, the walk-cost
  // distribution, and the MMU cost model as gauges.
  void RegisterMetrics(MetricScope scope);

  // Context switch on a vCPU: charges the base cost plus hook work.
  double OnContextSwitch(int vcpu_id, Nanos now);

 private:
  // Same-page run memo for ExecuteBatch: the last cleanly translated page
  // of the current batch. While the memo matches, repeat accesses skip the
  // TLB set scan (counted as hits via Tlb::CountCoalescedHit) and repeat
  // the dirty-bit micro-walk only once per run. The memo is only valid
  // within one ExecuteBatch call: anything that can move pages or flush
  // TLBs mid-batch (a PMI handler, a poison recovery) invalidates it, and
  // context switches / event drains only happen between batches.
  struct RunMemo {
    static constexpr PageNum kNone = ~static_cast<PageNum>(0);
    PageNum vpn = kNone;
    FrameId frame = kInvalidFrame;
    TierIndex tier = kFmemTier;
    bool dirty_done = false;  // D bit already set in both dimensions.
  };

  // The access pipeline shared by ExecuteAccess (memo == nullptr: exact
  // legacy behaviour) and ExecuteBatch (memo tracks same-page runs).
  AccessResult ExecuteAccessImpl(Vcpu& v, GuestProcess& process, uint64_t gva, bool is_write,
                                 RunMemo* memo);

  // Charges a page-sized transfer against the host tier backing `gpa`.
  double PageCopyCost(PageNum src_gpa, PageNum dst_gpa, Nanos now);

  VmConfig config_;
  Hypervisor* host_;
  // Hot-path aliases of host subsystems, bound at VM creation. The harness
  // (and every test fixture) wires the fault injector and swap device into
  // the hypervisor before creating VMs, and HostMemory outlives the
  // hypervisor — so these never dangle and never change. Caching them
  // removes two pointer chases through host_ from every simulated access.
  HostMemory* mem_ = nullptr;
  FaultInjector* fault_ = nullptr;
  SwapDevice* swap_ = nullptr;
  std::unique_ptr<GuestKernel> kernel_;
  PageTable ept_;
  std::vector<std::unique_ptr<Vcpu>> vcpus_;
  VmStats stats_;
  CpuAccount mgmt_account_;
  Histogram walk_cost_ns_;
  Rng rng_;
  bool departed_ = false;
  // Cached per-tier poison arming (plan probability > 0), fixed at VM
  // creation. FaultInjector::ShouldInject on a zero-probability site is a
  // guaranteed no-draw no-op, so skipping the call entirely when a tier is
  // unarmed is observationally identical — and saves a per-access stream
  // lookup on faulted-but-unpoisoned runs.
  std::array<bool, kMaxFaultTiers> poison_armed_{};
};

}  // namespace demeter

#endif  // DEMETER_SRC_HYPER_VM_H_
