#include "src/hyper/vm.h"

#include <algorithm>
#include <string>

#include "src/base/logging.h"
#include "src/hyper/hypervisor.h"
#include "src/mem/tier.h"

namespace demeter {

Vm::Vm(const VmConfig& config, Hypervisor* host)
    : config_(config), host_(host), rng_(config.rng_seed + static_cast<uint64_t>(config.id)) {
  DEMETER_CHECK(host != nullptr);
  DEMETER_CHECK_GT(config.num_vcpus, 0);
  DEMETER_CHECK_GT(config.total_pages(), 0u);

  GuestKernelConfig kconfig;
  kconfig.num_nodes = 2;
  // Each node's span covers 100% of VM memory so the balloon can shift
  // composition anywhere between all-FMEM and all-SMEM (§3.3).
  kconfig.node_span_pages = {config.total_pages(), config.total_pages()};
  if (config.start_full) {
    kconfig.node_present_pages = {config.total_pages(), config.total_pages()};
  } else {
    kconfig.node_present_pages = {config.fmem_pages(), config.smem_pages()};
  }
  kconfig.free_list_shuffle_seed = config.rng_seed + 17;
  kernel_ = std::make_unique<GuestKernel>(kconfig);
  kernel_->BindFault(host->fault_injector(), config.id);

  for (int i = 0; i < config.num_vcpus; ++i) {
    auto vcpu = std::make_unique<Vcpu>();
    vcpu->id = i;
    vcpu->pebs = std::make_unique<PebsUnit>(config.pebs);
    vcpu->pebs->BindTrace(host->tracer(), config.id, i);
    vcpu->pebs->BindFault(host->fault_injector(), config.id);
    vcpu->next_context_switch = config.context_switch_period;
    vcpus_.push_back(std::move(vcpu));
  }
  // Host subsystem aliases (see the member comment for the ordering
  // contract that makes these safe to bind once here).
  mem_ = &host->memory();
  fault_ = host->fault_injector();
  swap_ = host->swap();
  if (fault_ != nullptr) {
    poison_armed_[kFmemTier] = fault_->Arms(FaultSite::kPoisonFmem);
    poison_armed_[kSmemTier] = fault_->Arms(FaultSite::kPoisonSmem);
  }
}

AccessResult Vm::ExecuteAccess(int vcpu_id, GuestProcess& process, uint64_t gva, bool is_write) {
  return ExecuteAccessImpl(vcpu(vcpu_id), process, gva, is_write, /*memo=*/nullptr);
}

size_t Vm::ExecuteBatch(int vcpu_id, GuestProcess& process, std::span<const AccessOp> ops,
                        double stop_at_ns, BatchStep* steps) {
  Vcpu& v = vcpu(vcpu_id);
  RunMemo memo;
  size_t done = 0;
  while (done < ops.size()) {
    const AccessOp& op = ops[done];
    const AccessResult r = ExecuteAccessImpl(v, process, op.gva, op.is_write, &memo);
    v.clock_ns += r.ns;
    steps[done] = BatchStep{r.ns, v.now()};
    ++done;
    // Mirror the scalar loop's post-op horizon check: at least one op runs,
    // and the op that crosses the horizon is included (then we stop, so the
    // caller can account it and service the context-switch tick).
    if (!(v.clock_ns < stop_at_ns)) {
      break;
    }
  }
  return done;
}

AccessResult Vm::ExecuteAccessImpl(Vcpu& v, GuestProcess& process, uint64_t gva, bool is_write,
                                   RunMemo* memo) {
  ++v.accesses;
  ++stats_.accesses;
  if (is_write) {
    ++stats_.writes;
  }
  const Nanos now = v.now();

  if (rng_.NextBool(config_.cache_hit_rate)) {
    ++stats_.cache_hits;
    double ns = kL2HitLatencyNs;
    const double pmi = v.pebs->OnAccess(gva, kL2HitLatencyNs, is_write, now);
    ns += pmi;
    if (pmi != 0.0 && memo != nullptr) {
      memo->vpn = RunMemo::kNone;  // The PMI handler may have moved pages.
    }
    stats_.total_access_ns += ns;
    return AccessResult{ns, /*cache_hit=*/true, kFmemTier};
  }

  const PageNum vpn = PageOf(gva);
  double total = 0.0;
  TranslationResult tr;
  FaultInjector* const fault = fault_;
  SwapDevice* const swap = swap_;
  bool poison_drawn = false;
  TierIndex t = kFmemTier;
  bool translated = false;

  // Same-page run fast path: the previous non-cache-hit access of this
  // batch translated this very page and nothing since could have moved it
  // (the memo is dropped on any PMI or poison recovery, and the page's own
  // TLB entry is pinned by being the most recently touched). Costs and
  // counters are exactly those of a scalar TLB hit — including the dirty
  // micro-walk, done once per run (it is idempotent and counter-free) and
  // the per-access poison draw — only the set scan is skipped.
  if (memo != nullptr && memo->vpn == vpn) {
    total += config_.mmu_costs.tlb_hit_ns;
    v.tlb.CountCoalescedHit();
    if (is_write && !memo->dirty_done) {
      const PageTable::WalkResult gpt_leaf =
          process.gpt().Translate(vpn, /*is_write=*/true, /*set_bits=*/true);
      if (gpt_leaf.present) {
        ept_.Translate(gpt_leaf.target, /*is_write=*/true, /*set_bits=*/true);
      }
      memo->dirty_done = true;
    }
    t = memo->tier;
    tr.frame = memo->frame;
    tr.tlb_hit = true;
    translated = true;
    if (fault != nullptr && t < kMaxFaultTiers && poison_armed_[static_cast<size_t>(t)]) {
      poison_drawn = true;
      const FaultSite site = t == kFmemTier ? FaultSite::kPoisonFmem : FaultSite::kPoisonSmem;
      if (fault->ShouldInject(site, id())) {
        memo->vpn = RunMemo::kNone;  // Recovery unmaps + flushes the page.
        total += host_->OnMemoryError(*this, process, vpn, now);
        translated = false;  // Retry through the full loop, like scalar.
      }
    }
  }

  if (!translated) {
    // One poison draw per access: an MCE retires the frame mid-access and
    // the access retries after recovery, which can itself refault (SIGBUS
    // path: guest fault, then EPT fault) — hence the larger armed retry
    // bound. The worst chain is guest fault, EPT fault, poisoned access,
    // then the SIGBUS discard's own guest fault + EPT fault before the
    // access finally lands. A three-tier host can add one swap-in retry
    // (plus one more after a poison recovery repopulates into swap under
    // extreme pressure).
    const int max_attempts = (fault != nullptr ? 5 : 3) + (swap != nullptr ? 2 : 0);
    bool swap_in_place = false;
    for (int attempt = 0;; ++attempt) {
      tr = Translate2D(v.tlb, process.gpt(), ept_, vpn, is_write, config_.mmu_costs);
      total += tr.cost_ns;
      if (!tr.tlb_hit) {
        walk_cost_ns_.Record(static_cast<uint64_t>(tr.cost_ns));
      }
      if (tr.status == TranslateStatus::kOk) {
        const TierIndex ft = mem_->TierOf(tr.frame);
        if (swap != nullptr && ft == kSwapTier && !swap_in_place) {
          // Major fault: the page lives in the far swap tier. The guest
          // blocks while the host swaps it in (device read or in-flight
          // buffer hit, inside SwapInGpa's migration) and promotes it —
          // straight to FMEM when there is headroom, else SMEM.
          ++stats_.swap_ins;
          // A TLB hit short-circuits the walk, leaving tr.gpa_page unset —
          // recover the faulting page's gPA from the GPT before asking the
          // host to swap it in (a real major fault re-walks the same way).
          const PageNum swap_gpa =
              tr.tlb_hit ? process.gpt().Lookup(vpn).target : tr.gpa_page;
          double cost = 0.0;
          if (host_->SwapInGpa(*this, swap_gpa, now, &cost)) {
            FlushGvaAll(vpn);
            total += cost + SingleFlushCost();
            continue;  // Re-translate onto the promoted frame.
          }
          // No free frame anywhere above: access the page in place, far.
          total += cost;
          swap_in_place = true;
        }
        if (fault != nullptr && !poison_drawn && ft < kMaxFaultTiers &&
            poison_armed_[static_cast<size_t>(ft)]) {
          poison_drawn = true;
          const FaultSite site =
              ft == kFmemTier ? FaultSite::kPoisonFmem : FaultSite::kPoisonSmem;
          if (fault->ShouldInject(site, id())) {
            total += host_->OnMemoryError(*this, process, vpn, now);
            continue;  // The access retries once the MCE is handled.
          }
        }
        t = ft;
        break;
      }
      DEMETER_CHECK_LT(attempt, max_attempts) << "translation did not converge for gva " << gva;
      if (tr.status == TranslateStatus::kGuestFault) {
        ++stats_.guest_faults;
        total += config_.mmu_costs.guest_fault_ns;
        double extra = 0.0;
        auto gpa = kernel_->HandleFault(process, vpn, &extra);
        total += extra;
        DEMETER_CHECK(gpa.has_value()) << "guest OOM: vm " << id() << " gva " << gva;
      } else {
        ++stats_.ept_faults;
        total += config_.mmu_costs.ept_fault_ns;
        const FrameId frame = host_->PopulateEpt(*this, tr.gpa_page, now);
        DEMETER_CHECK_NE(frame, kInvalidFrame) << "host OOM populating gpa " << tr.gpa_page;
      }
    }
  }

  const double mem = mem_->tier(t).AccessCost(now, 64, is_write);
  total += mem;
  if (t == kFmemTier) {
    ++stats_.fmem_accesses;
  } else if (t == kSwapTier) {
    ++stats_.swap_accesses;
  } else {
    ++stats_.smem_accesses;
  }
  const double pmi = v.pebs->OnAccess(gva, mem, is_write, now);
  total += pmi;
  if (memo != nullptr) {
    if (pmi != 0.0 || t == kSwapTier) {
      // A PMI handler may migrate pages and flush TLBs; a far-tier access
      // must re-fault every time. Either way, no run to continue.
      memo->vpn = RunMemo::kNone;
    } else {
      // Start (or continue) the run. The page is live in the TLB here: a
      // hit kept its entry, a miss just inserted it.
      memo->dirty_done = (memo->vpn == vpn && memo->dirty_done) || is_write;
      memo->vpn = vpn;
      memo->frame = tr.frame;
      memo->tier = t;
    }
  }
  stats_.total_access_ns += total;
  return AccessResult{total, /*cache_hit=*/false, t};
}

void Vm::FlushGvaAll(PageNum vpn) {
  for (auto& v : vcpus_) {
    v->tlb.InvalidatePage(vpn);
  }
}

void Vm::FullFlushAll() {
  for (auto& v : vcpus_) {
    v->tlb.InvalidateAll();
  }
  Tracer* tracer = host_->tracer();
  if (tracer != nullptr && tracer->enabled()) {
    // The flush hits every vCPU; stamp it with the most-advanced clock.
    Nanos now = 0;
    for (const auto& v : vcpus_) {
      now = std::max(now, v->now());
    }
    tracer->Instant("tlb", "full_flush", now, id(), 0,
                    TraceArgs().Add("vcpus", static_cast<uint64_t>(num_vcpus())).str());
  }
}

TlbStats Vm::AggregateTlbStats() const {
  TlbStats total;
  for (const auto& v : vcpus_) {
    total.Merge(v->tlb.stats());
  }
  return total;
}

double Vm::SingleFlushCost() const {
  return config_.mmu_costs.single_flush_ns * static_cast<double>(num_vcpus());
}

double Vm::FullFlushCost() const {
  return config_.mmu_costs.full_flush_ns * static_cast<double>(num_vcpus());
}

double Vm::PageCopyCost(PageNum src_gpa, PageNum dst_gpa, Nanos now) {
  double cost = 0.0;
  const auto src = ept_.Lookup(src_gpa);
  const auto dst = ept_.Lookup(dst_gpa);
  HostMemory& mem = host_->memory();
  uint64_t token = 0;
  if (src.present) {
    const TierIndex st = mem.TierOf(src.target);
    cost += mem.tier(st).AccessCost(now, kPageSize, /*is_write=*/false);
    token = mem.ReadToken(src.target);
  }
  if (dst.present) {
    const TierIndex dt = mem.TierOf(dst.target);
    cost += mem.tier(dt).AccessCost(now, kPageSize, /*is_write=*/true);
    mem.WriteToken(dst.target, token);
  }
  return cost;
}

int Vm::NodeOfVpn(const GuestProcess& process, PageNum vpn) const {
  const auto r = process.gpt().Lookup(vpn);
  if (!r.present) {
    return -1;
  }
  return kernel_->NodeOfGpa(r.target);
}

bool Vm::MovePage(GuestProcess& process, PageNum vpn, int dst_node, Nanos now, double* cost_ns) {
  const auto gpt_entry = process.gpt().Lookup(vpn);
  if (!gpt_entry.present) {
    return false;
  }
  const PageNum old_gpa = gpt_entry.target;
  const int src_node = kernel_->NodeOfGpa(old_gpa);
  if (src_node == dst_node) {
    return false;
  }
  // Backpressure: while the destination's host tier is mid-shrink, the host
  // refuses new placements into it (guest promotion requests bounce).
  const TierIndex dst_tier = host_->TierForNode(dst_node);
  if (host_->TierUnderShrink(dst_tier)) {
    host_->CountShrinkBackpressure(dst_tier);
    return false;
  }
  FaultInjector* fault = host_->fault_injector();
  if (fault != nullptr && fault->ShouldInject(FaultSite::kMigrationFail, id())) {
    return false;
  }
  auto new_gpa = kernel_->AllocGpa(dst_node, /*allow_fallback=*/false, cost_ns);
  if (!new_gpa.has_value()) {
    return false;
  }
  // Back the destination before copying (first touch by the copy loop).
  if (!ept_.Lookup(*new_gpa).present) {
    *cost_ns += config_.mmu_costs.ept_fault_ns;
    const FrameId frame = host_->PopulateEpt(*this, *new_gpa, now);
    if (frame == kInvalidFrame) {
      kernel_->FreeGpa(*new_gpa);
      return false;
    }
  }
  // A far-tier source makes this move a swap-in: the copy's read side pays
  // the device (in-flight hit or seeded read) and releases the slot, so the
  // free-page report below finds no slot to drop.
  SwapDevice* swap = host_->swap();
  if (swap != nullptr) {
    const auto src_ept = ept_.Lookup(old_gpa);
    if (src_ept.present && host_->memory().TierOf(src_ept.target) == kSwapTier) {
      *cost_ns += swap->SlotLoad(src_ept.target, id(), now);
    }
  }
  *cost_ns += PageCopyCost(old_gpa, *new_gpa, now);
  process.gpt().Unmap(vpn);
  FlushGvaAll(vpn);
  *cost_ns += SingleFlushCost() + config_.mmu_costs.migrate_sw_ns;
  DEMETER_CHECK(process.gpt().Map(vpn, *new_gpa, /*writable=*/true));
  kernel_->OnPageMoved(old_gpa, *new_gpa);
  kernel_->FreeGpa(old_gpa);
  // Free-page reporting: the guest tells the host the old page is reusable.
  host_->UnbackGpa(*this, old_gpa, /*flush=*/false);
  if (dst_node == 0) {
    ++stats_.pages_promoted;
  } else if (src_node == 0) {
    ++stats_.pages_demoted;
  }
  return true;
}

bool Vm::SwapPages(GuestProcess& proc_a, PageNum vpn_a, GuestProcess& proc_b, PageNum vpn_b,
                   Nanos now, double* cost_ns) {
  const auto entry_a = proc_a.gpt().Lookup(vpn_a);
  const auto entry_b = proc_b.gpt().Lookup(vpn_b);
  if (!entry_a.present || !entry_b.present) {
    return false;
  }
  FaultInjector* fault = host_->fault_injector();
  if (fault != nullptr && fault->ShouldInject(FaultSite::kMigrationFail, id())) {
    return false;
  }
  const PageNum gpa_a = entry_a.target;
  const PageNum gpa_b = entry_b.target;
  // Ensure both backed (they were touched to become mapped, but be safe).
  for (PageNum gpa : {gpa_a, gpa_b}) {
    if (!ept_.Lookup(gpa).present) {
      *cost_ns += config_.mmu_costs.ept_fault_ns;
      if (host_->PopulateEpt(*this, gpa, now) == kInvalidFrame) {
        return false;
      }
    }
  }
  const FrameId frame_a = ept_.Lookup(gpa_a).target;
  const FrameId frame_b = ept_.Lookup(gpa_b).target;
  HostMemory& mem = host_->memory();
  const TierIndex tier_a = mem.TierOf(frame_a);
  const TierIndex tier_b = mem.TierOf(frame_b);

  // Unmap both sides, then exchange contents through a cacheline-sized
  // buffer (no page allocation — the point of balanced relocation).
  proc_a.gpt().Unmap(vpn_a);
  proc_b.gpt().Unmap(vpn_b);
  FlushGvaAll(vpn_a);
  FlushGvaAll(vpn_b);
  *cost_ns += 2 * SingleFlushCost() + 2 * config_.mmu_costs.migrate_sw_ns;

  *cost_ns += mem.tier(tier_a).AccessCost(now, kPageSize, /*is_write=*/false);
  *cost_ns += mem.tier(tier_b).AccessCost(now, kPageSize, /*is_write=*/false);
  *cost_ns += mem.tier(tier_a).AccessCost(now, kPageSize, /*is_write=*/true);
  *cost_ns += mem.tier(tier_b).AccessCost(now, kPageSize, /*is_write=*/true);
  const uint64_t token_a = mem.ReadToken(frame_a);
  mem.WriteToken(frame_a, mem.ReadToken(frame_b));
  mem.WriteToken(frame_b, token_a);
  // A far-tier side keeps its frame (balanced swap allocates nothing) but
  // exchanges contents: read the old contents back from the device and
  // enqueue a fresh writeback for the new ones. Load-then-store nets out to
  // the same single slot, so the frame<->slot bijection holds.
  SwapDevice* swap = host_->swap();
  if (swap != nullptr) {
    for (const FrameId frame : {frame_a, frame_b}) {
      if (mem.TierOf(frame) == kSwapTier) {
        *cost_ns += swap->SlotLoad(frame, id(), now);
        *cost_ns += swap->SlotStore(frame, id(), now);
      }
    }
  }

  // Cross-remap: each vpn adopts the other's gPA (and thus its node/tier).
  DEMETER_CHECK(proc_a.gpt().Map(vpn_a, gpa_b, /*writable=*/true));
  DEMETER_CHECK(proc_b.gpt().Map(vpn_b, gpa_a, /*writable=*/true));
  kernel_->OnPagesSwapped(gpa_a, gpa_b);

  const int node_a = kernel_->NodeOfGpa(gpa_a);
  const int node_b = kernel_->NodeOfGpa(gpa_b);
  if (node_a != node_b) {
    ++stats_.pages_promoted;
    ++stats_.pages_demoted;
  }
  return true;
}

void Vm::RegisterMetrics(MetricScope scope) {
  MetricScope stats = scope.Sub("stats");
  stats.RegisterCounter("accesses", &stats_.accesses);
  stats.RegisterCounter("writes", &stats_.writes);
  stats.RegisterCounter("cache_hits", &stats_.cache_hits);
  stats.RegisterCounter("guest_faults", &stats_.guest_faults);
  stats.RegisterCounter("ept_faults", &stats_.ept_faults);
  stats.RegisterCounter("fmem_accesses", &stats_.fmem_accesses);
  stats.RegisterCounter("smem_accesses", &stats_.smem_accesses);
  stats.RegisterCounter("pages_promoted", &stats_.pages_promoted);
  stats.RegisterCounter("pages_demoted", &stats_.pages_demoted);
  stats.RegisterCounter("context_switches", &stats_.context_switches);
  stats.RegisterGauge("total_access_ns", &stats_.total_access_ns);
  // Far-tier counters exist only on hosts with a swap device, keeping
  // two-tier metric output unchanged.
  if (host_->swap() != nullptr) {
    stats.RegisterCounter("swap_accesses", &stats_.swap_accesses);
    stats.RegisterCounter("swap_ins", &stats_.swap_ins);
    host_->swap()->RegisterVmMetrics(scope.Sub("swap"), id());
  }

  for (const auto& v : vcpus_) {
    MetricScope vscope = scope.Sub("vcpu" + std::to_string(v->id));
    MetricScope tlb = vscope.Sub("tlb");
    const TlbStats& ts = v->tlb.stats();
    tlb.RegisterCounter("hits", &ts.hits);
    tlb.RegisterCounter("misses", &ts.misses);
    tlb.RegisterCounter("single_flushes", &ts.single_flushes);
    tlb.RegisterCounter("full_flushes", &ts.full_flushes);
    MetricScope pebs = vscope.Sub("pebs");
    // Policies that bring their own sampling config (Demeter, Memtis)
    // replace the vCPU's PebsUnit when they attach — which can happen after
    // this registration on the AdmitVm/AdoptVm paths. Read through the
    // vCPU so the counters always track the live unit.
    const Vcpu* vp = v.get();
    pebs.RegisterCounterFn("events_counted", [vp] { return vp->pebs->stats().events_counted; });
    pebs.RegisterCounterFn("records_written", [vp] { return vp->pebs->stats().records_written; });
    pebs.RegisterCounterFn("records_dropped", [vp] { return vp->pebs->stats().records_dropped; });
    pebs.RegisterCounterFn("pmis", [vp] { return vp->pebs->stats().pmis; });
  }

  // Aggregates over all vCPUs, recomputed at snapshot time.
  MetricScope tlb = scope.Sub("tlb");
  const Vm* self = this;
  tlb.RegisterCounterFn("hits", [self] { return self->AggregateTlbStats().hits; });
  tlb.RegisterCounterFn("misses", [self] { return self->AggregateTlbStats().misses; });
  tlb.RegisterCounterFn("single_flushes",
                        [self] { return self->AggregateTlbStats().single_flushes; });
  tlb.RegisterCounterFn("full_flushes",
                        [self] { return self->AggregateTlbStats().full_flushes; });

  MetricScope kernel = scope.Sub("kernel");
  const GuestKernel::Stats& ks = kernel_->stats();
  kernel.RegisterCounter("faults", &ks.faults);
  kernel.RegisterCounter("fallback_allocs", &ks.fallback_allocs);
  kernel.RegisterCounter("reclaim_events", &ks.reclaim_events);
  kernel.RegisterCounter("oom_failures", &ks.oom_failures);
  kernel.RegisterCounter("sigbus_discards", &ks.sigbus_discards);

  MetricScope mgmt = scope.Sub("mgmt");
  const CpuAccount* account = &mgmt_account_;
  for (int s = 0; s < kNumTmmStages; ++s) {
    const TmmStage stage = static_cast<TmmStage>(s);
    mgmt.RegisterCounterFn(std::string(TmmStageName(stage)) + "_ns", [account, stage] {
      return static_cast<uint64_t>(account->ForStage(stage));
    });
  }
  mgmt.RegisterCounterFn("total_ns",
                         [account] { return static_cast<uint64_t>(account->Total()); });

  MetricScope mmu = scope.Sub("mmu");
  mmu.RegisterDistribution("walk_cost_ns", &walk_cost_ns_);
}

double Vm::OnContextSwitch(int vcpu_id, Nanos now) {
  ++stats_.context_switches;
  return config_.mmu_costs.context_switch_ns + kernel_->OnContextSwitch(vcpu_id, now);
}

}  // namespace demeter
