// FMEM overcommit scheduler.
//
// Under overcommit the host deliberately provisions less physical FMEM than
// the sum of the VMs' fast-node demand (ratio R > 1.0 of demand to
// capacity). Something has to give when every guest tries to realize its
// demand at once; without arbitration the outcome is whoever faults first
// wins, and the losers spill page-by-page through PopulateEpt's fallback
// chain (FMEM -> SMEM -> swap) with no regard for per-VM fairness.
//
// The scheduler closes that gap with the double balloon (§3.3): on a
// periodic tick it checks FMEM's free-page watermark, and while the tier is
// below the low watermark it picks the VM whose guest fast-node residency
// exceeds its fair share by the most and asks (via the spill callback,
// wired by the harness to that VM's DemeterBalloon) for that VM to give
// back fast-node pages. The guest then demotes its coldest fast-node pages
// itself — guest delegation, exactly the paper's division of labor — and
// the freed frames take the pressure off FMEM; meanwhile the demoted pages
// land in SMEM or, when SMEM is also full, the far swap tier. When the
// tier recovers above the high watermark, balloons are deflated (smallest
// residency first) so a transient spike does not permanently shrink a VM.
//
// Ticks are EventQueue events, guarded by the usual alive-flag so a
// machine teardown mid-schedule cannot fire into a dead scheduler.

#ifndef DEMETER_SRC_HYPER_OVERCOMMIT_H_
#define DEMETER_SRC_HYPER_OVERCOMMIT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/units.h"
#include "src/telemetry/metrics.h"

namespace demeter {

class Hypervisor;

struct OvercommitConfig {
  bool enabled = false;
  // Aggregate fast-node demand / physical FMEM capacity. Informational
  // (the bench sizes the host); recorded so results are self-describing.
  double ratio = 1.0;
  Nanos period_ns = kMillisecond;
  // Arbitration hysteresis on FMEM free fraction: reclaim below `low`,
  // stop (and deflate) above `high`.
  double low_free_frac = 0.08;
  double high_free_frac = 0.16;
  // Largest balloon delta requested per tick (bounds per-tick guest work).
  uint64_t max_batch_pages = 256;

  friend bool operator==(const OvercommitConfig&, const OvercommitConfig&) = default;
};

class OvercommitScheduler {
 public:
  struct Stats {
    uint64_t ticks = 0;
    uint64_t spill_requests = 0;    // Inflate arbitrations issued.
    uint64_t pages_requested = 0;   // Pages asked back across all spills.
    uint64_t refill_requests = 0;   // Deflate arbitrations issued.
    uint64_t pages_refilled = 0;    // Pages released back across refills.
    uint64_t no_victim = 0;         // Pressure ticks with nobody to squeeze.
  };

  // The spill callback applies one arbitration decision: delta_pages > 0
  // asks `vm` to give back fast-node pages (balloon inflate on node 0),
  // delta_pages < 0 returns them (deflate). Returns false when the VM has
  // no double balloon (the scheduler then tries the next candidate).
  using SpillRequest = std::function<bool(int vm, int64_t delta_pages, Nanos now)>;

  // True when `vm` currently holds resources on this host and should count
  // toward (and be squeezable for) the fair share. The harness wires
  // "booted and not departed": a deferred-boot VM that has not booted yet
  // holds no pages and must not dilute the divisor; a VM that finished but
  // still resides keeps its share (it still holds its pages); departed /
  // extracted VMs hold nothing. Unset, the scheduler falls back to its old
  // `!departed()` test — which wrongly counts unbooted VMs.
  using ResidentFn = std::function<bool(int vm)>;

  OvercommitScheduler(Hypervisor* hyper, const OvercommitConfig& config);
  ~OvercommitScheduler();

  const OvercommitConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }

  void set_spill_request(SpillRequest spill) { spill_ = std::move(spill); }
  void set_resident(ResidentFn resident) { resident_ = std::move(resident); }

  // Arms the periodic tick (first fires one period in, after boot-time
  // provisioning). No-op when disabled or no spill callback is wired.
  void Start();

  // One arbitration pass; exposed for tests. Normally driven by the tick.
  void Arbitrate(Nanos now);

  // Registers counters under `scope` (the harness passes "host/overcommit").
  void RegisterMetrics(MetricScope scope);

 private:
  void Tick(Nanos now);
  bool Resident(int vm) const;

  Hypervisor* hyper_;
  OvercommitConfig config_;
  SpillRequest spill_;
  ResidentFn resident_;
  Stats stats_;
  // Balloon pages the scheduler itself has taken per VM (grows on spill,
  // shrinks on refill); refills never exceed what was taken, so the
  // scheduler cannot deflate a balloon below its provisioning baseline.
  std::vector<uint64_t> taken_pages_;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace demeter

#endif  // DEMETER_SRC_HYPER_OVERCOMMIT_H_
