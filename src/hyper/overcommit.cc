#include "src/hyper/overcommit.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/hyper/hypervisor.h"

namespace demeter {

OvercommitScheduler::OvercommitScheduler(Hypervisor* hyper, const OvercommitConfig& config)
    : hyper_(hyper), config_(config) {
  DEMETER_CHECK(hyper != nullptr);
}

OvercommitScheduler::~OvercommitScheduler() { *alive_ = false; }

void OvercommitScheduler::Start() {
  if (!config_.enabled || !spill_ || config_.period_ns == 0) {
    return;
  }
  auto alive = alive_;
  hyper_->events().Schedule(config_.period_ns, [this, alive](Nanos fire) {
    if (!*alive) {
      return;
    }
    Tick(fire);
  });
}

void OvercommitScheduler::Tick(Nanos now) {
  ++stats_.ticks;
  Arbitrate(now);
  auto alive = alive_;
  hyper_->events().Schedule(now + config_.period_ns, [this, alive](Nanos fire) {
    if (!*alive) {
      return;
    }
    Tick(fire);
  });
}

bool OvercommitScheduler::Resident(int vm) const {
  return resident_ ? resident_(vm) : !hyper_->vm(vm).departed();
}

void OvercommitScheduler::Arbitrate(Nanos now) {
  if (!spill_) {
    return;
  }
  HostMemory& memory = hyper_->memory();
  const uint64_t capacity = memory.CapacityPages(kFmemTier);
  if (capacity == 0) {
    return;
  }
  taken_pages_.resize(static_cast<size_t>(hyper_->num_vms()), 0);
  const uint64_t free = memory.FreePages(kFmemTier);
  const double free_frac = static_cast<double>(free) / static_cast<double>(capacity);

  if (free_frac < config_.low_free_frac) {
    // Pressure: squeeze the VM whose fast-node residency is the furthest
    // over its fair share. Residency is the guest's node-0 used pages —
    // the double balloon acts on guest nodes, so that is the currency the
    // arbitration trades in. The fair-share divisor is recomputed over the
    // VMs resident *right now*, every tick: under lifecycle churn (deferred
    // boots, departures, ExtractVm/AdoptVm) a stale count would let absent
    // VMs dilute everyone else's share.
    uint64_t active = 0;
    for (int i = 0; i < hyper_->num_vms(); ++i) {
      if (Resident(i)) {
        ++active;
      }
    }
    if (active == 0) {
      return;
    }
    const uint64_t fair = capacity / active;
    const uint64_t target_free =
        static_cast<uint64_t>(config_.high_free_frac * static_cast<double>(capacity));
    uint64_t needed = target_free > free ? target_free - free : 0;
    needed = std::min(needed, config_.max_batch_pages);
    if (needed == 0) {
      return;
    }
    // Candidates ordered by excess over fair share; try until one accepts
    // (a VM without a double balloon cannot be asked to give pages back).
    int victim = -1;
    uint64_t victim_excess = 0;
    for (int i = 0; i < hyper_->num_vms(); ++i) {
      Vm& vm = hyper_->vm(i);
      if (!Resident(i)) {
        continue;
      }
      const uint64_t resident = vm.kernel().node(0).used_pages();
      const uint64_t excess = resident > fair ? resident - fair : 0;
      if (excess > victim_excess) {
        victim = i;
        victim_excess = excess;
      }
    }
    if (victim < 0) {
      ++stats_.no_victim;
      return;
    }
    const uint64_t ask = std::min(needed, victim_excess);
    if (spill_(victim, static_cast<int64_t>(ask), now)) {
      ++stats_.spill_requests;
      stats_.pages_requested += ask;
      taken_pages_[static_cast<size_t>(victim)] += ask;
    } else {
      ++stats_.no_victim;
    }
    return;
  }

  if (free_frac > config_.high_free_frac) {
    // Recovered: hand pages back, most-squeezed VM first, but never more
    // than the surplus above the high watermark (no thrashing).
    const uint64_t target_free =
        static_cast<uint64_t>(config_.high_free_frac * static_cast<double>(capacity));
    const uint64_t surplus = free - target_free;
    int victim = -1;
    uint64_t victim_taken = 0;
    for (int i = 0; i < hyper_->num_vms(); ++i) {
      if (!Resident(i)) {
        continue;
      }
      const uint64_t taken = taken_pages_[static_cast<size_t>(i)];
      if (taken > victim_taken) {
        victim = i;
        victim_taken = taken;
      }
    }
    if (victim < 0) {
      return;
    }
    const uint64_t give =
        std::min({victim_taken, surplus, config_.max_batch_pages});
    if (give > 0 && spill_(victim, -static_cast<int64_t>(give), now)) {
      ++stats_.refill_requests;
      stats_.pages_refilled += give;
      taken_pages_[static_cast<size_t>(victim)] -= give;
    }
  }
}

void OvercommitScheduler::RegisterMetrics(MetricScope scope) {
  scope.RegisterCounter("ticks", &stats_.ticks);
  scope.RegisterCounter("spill_requests", &stats_.spill_requests);
  scope.RegisterCounter("pages_requested", &stats_.pages_requested);
  scope.RegisterCounter("refill_requests", &stats_.refill_requests);
  scope.RegisterCounter("pages_refilled", &stats_.pages_refilled);
  scope.RegisterCounter("no_victim", &stats_.no_victim);
}

}  // namespace demeter
