// Pre-copy live migration between Machines.
//
// A migration runs in epoch-sized rounds over the source VM's EPT dirty
// bits, mirroring QEMU-style dirty logging:
//
//   round 0 (Begin)  — copy every EPT-backed page; enabling dirty logging
//                      costs a full TLB shootdown, and the D bits are
//                      cleared so the next round sees only re-writes.
//   round k (Advance)— copy (and clear) the pages dirtied since round k-1,
//                      again behind a full flush.
//   stop-and-copy    — when the dirty set fits under `stop_copy_pages` (or
//                      `max_precopy_rounds` is exhausted), the VM is paused:
//                      Machine::ExtractVm captures its image and progress,
//                      Machine::AdoptVm rebuilds it on the destination, and
//                      the residual copy plus the rebuild are charged as
//                      downtime on every resumed vCPU clock.
//
// Copy bandwidth is charged to the source VM's management account
// (TmmStage::kMigration): per page, one source-tier read plus
// `wire_ns_per_page` of interconnect. The armed `migratefail` fault aborts
// a migration once its cumulative copy time crosses the per-host window —
// strictly before stop-and-copy, so the source VM was never touched and the
// abort is leak-free by construction.

#ifndef DEMETER_SRC_CLUSTER_LIVE_MIGRATOR_H_
#define DEMETER_SRC_CLUSTER_LIVE_MIGRATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/fault/fault.h"
#include "src/harness/machine.h"

namespace demeter {

struct MigrationConfig {
  // Evacuate VMs off hosts whose FMEM tier enters a shrink window.
  bool evacuate_on_shrink = true;
  int max_precopy_rounds = 4;       // Rounds before forced stop-and-copy.
  uint64_t stop_copy_pages = 256;   // Dirty set small enough to stop-and-copy.
  double wire_ns_per_page = 600.0;  // Interconnect cost per copied page.
  int max_inflight = 2;             // Cluster-wide concurrent migrations.
  int cooldown_epochs = 4;          // Barriers between evacuations per source.
  // Aborted migrations (migratefail or a fenced destination) re-enter a
  // bounded per-route retry with destination re-selection instead of being
  // dropped. 0 (the default) disables retries entirely, so pre-existing
  // fleet behaviour is untouched.
  int max_retries = 0;
  int retry_backoff_epochs = 2;     // Barriers a route waits between attempts.

  friend bool operator==(const MigrationConfig&, const MigrationConfig&) = default;
};

class LiveMigrator {
 public:
  struct Stats {
    uint64_t started = 0;
    uint64_t completed = 0;
    uint64_t aborted = 0;    // migratefail fired mid-copy; VM stayed on source.
    uint64_t cancelled = 0;  // VM finished/departed mid-precopy.
    uint64_t fenced = 0;     // Route torn down because an endpoint host died.
    uint64_t precopy_rounds = 0;
    uint64_t pages_copied = 0;
    uint64_t downtime_ns_total = 0;  // Stop-and-copy transfer time only.
  };

  // A migration that completed at a barrier: the VM now lives on
  // `dst_host` at index `dst_vm`.
  struct Completion {
    int src_host = -1;
    int src_vm = -1;
    int dst_host = -1;
    int dst_vm = -1;
  };

  // A migration's not-yet-materialized claim against its destination host,
  // split the way the VM's pages will land (FMEM hot-set share + far
  // remainder). Charged to the per-destination ledger exactly once, when
  // the migration survives its round-0 copy; released exactly once, on the
  // single Advance() path that retires it (abort, cancel, or stop-and-copy
  // completion — after which the destination's real allocations carry the
  // weight). Release underflow — the double-release that would quietly
  // inflate reported headroom — aborts.
  struct Commitment {
    uint64_t fmem_pages = 0;
    uint64_t far_pages = 0;
  };

  // `hosts` outlives the migrator; `faults` may be null (no abort fault).
  LiveMigrator(const MigrationConfig& config, std::vector<std::unique_ptr<Machine>>& hosts,
               FaultInjector* faults);

  // Starts migrating `src_vm` (active on `src_host`) toward `dst_host`,
  // performing the round-0 full copy at `now`; `commitment` is the claim
  // charged against the destination while the migration is in flight.
  // Returns false when the armed abort fault killed the migration during
  // round 0 (counted as started + aborted; the source VM is untouched and
  // the destination is never charged).
  bool Begin(int src_host, int src_vm, int dst_host, const Commitment& commitment, Nanos now);

  // Runs one pre-copy round for every in-flight migration at barrier time
  // `now`, resolving stop-and-copy / abort / cancellation. Returns the
  // migrations that completed, in start order.
  std::vector<Completion> Advance(Nanos now);

  // Tears down every in-flight migration routed at or from `host` (a
  // fail-stopped endpoint), releasing each destination commitment exactly
  // once and counting the routes as `fenced` (not aborted — the ledger
  // identity becomes started == completed + aborted + cancelled + fenced).
  // Returns the torn-down routes in start order so the cluster can decide
  // per route: a dead *source* means the VM itself is gone (restart path),
  // a dead *destination* leaves the source VM running (retry path).
  std::vector<Completion> FenceHost(int host);

  // Drains the routes aborted by migratefail since the last call (round-0
  // and mid-copy aborts alike), in abort order — the feed for the
  // cluster's retry queue. Fenced routes are returned by FenceHost, never
  // here.
  std::vector<Completion> TakeAbortedRoutes();

  int inflight() const { return static_cast<int>(inflight_.size()); }
  // Source/destination route of every in-flight migration (dst_vm == -1:
  // the destination index exists only after stop-and-copy).
  std::vector<Completion> InflightRoutes() const;
  // Per-destination-host ledger of in-flight commitments (indexed by host).
  // This — not a route scan — is what the cluster charges against each
  // destination's headroom, so a charge/release imbalance is immediately
  // visible to placement.
  const std::vector<Commitment>& DstCommitments() const { return dst_committed_; }
  // Read-only conservation audit: recomputes per-destination sums from the
  // in-flight list and reports every host where the ledger disagrees (which
  // covers the nothing-in-flight-but-nonzero-ledger leak).
  InvariantReport AuditCommitments() const;
  bool Migrating(int host, int vm) const;
  const Stats& stats() const { return stats_; }

  void RegisterMetrics(MetricScope scope) const;

 private:
  struct Inflight {
    int src_host = -1;
    int src_vm = -1;
    int dst_host = -1;
    int rounds = 0;
    double copy_ns = 0.0;  // Cumulative pre-copy cost (abort clock).
    bool abort_armed = false;
    Nanos abort_after = 0;
    Commitment commitment;  // Held against dst_host while in flight.
  };

  // The exactly-once release (abort / cancel / completion paths).
  void ReleaseCommitment(const Inflight& m);

  // Copies the current dirty set (or, when `full`, every EPT-backed page)
  // behind a full TLB flush, clearing D bits; charges the cost to the source
  // VM's migration account and returns {pages, ns}.
  struct RoundResult {
    uint64_t pages = 0;
    double ns = 0.0;
  };
  RoundResult CopyRound(Machine& src, int vm, bool full, Nanos now);

  MigrationConfig config_;
  std::vector<std::unique_ptr<Machine>>& hosts_;
  FaultInjector* faults_;
  std::vector<Inflight> inflight_;
  std::vector<Commitment> dst_committed_;  // Indexed by destination host.
  std::vector<Completion> aborted_routes_;  // Pending TakeAbortedRoutes drain.
  Stats stats_;
};

}  // namespace demeter

#endif  // DEMETER_SRC_CLUSTER_LIVE_MIGRATOR_H_
