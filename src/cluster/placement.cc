#include "src/cluster/placement.h"

#include "src/base/logging.h"

namespace demeter {

const char* PlacementPolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kFirstFit:
      return "first-fit";
    case PlacementPolicy::kBestFit:
      return "best-fit";
    case PlacementPolicy::kSpread:
      return "spread";
  }
  return "?";
}

PlacementPolicy PlacementPolicyFromName(const std::string& name) {
  if (name == "first-fit") {
    return PlacementPolicy::kFirstFit;
  }
  if (name == "best-fit") {
    return PlacementPolicy::kBestFit;
  }
  if (name == "spread") {
    return PlacementPolicy::kSpread;
  }
  DEMETER_CHECK(false) << "unknown placement policy '" << name << "'";
  return PlacementPolicy::kFirstFit;
}

double PlacementController::Score(const HostLoad& load) {
  // Far-tier frames are worth half a near frame to a newcomer (its pages
  // start there when FMEM is tight), and every frame of far pressure or
  // damage history costs a tenth — enough to steer identical-capacity
  // fleets away from battered hosts without overriding real headroom gaps.
  // Health history weighs heavier: an aborted migration at a host costs a
  // full frame-equivalent and a whole-host crash costs 64 — a recently
  // resurrected host must rebuild trust before it wins close calls, but a
  // large genuine headroom gap still dominates.
  return static_cast<double>(load.fmem_free_pages) +
         0.5 * static_cast<double>(load.far_free_pages) -
         0.1 * static_cast<double>(load.far_used_pages + load.poisoned_pages +
                                   load.carved_pages) -
         static_cast<double>(load.migration_aborts) -
         64.0 * static_cast<double>(load.failures);
}

int PlacementController::PickFallbackHost(const std::vector<HostLoad>& loads) {
  // Tier 1: healthy. Tier 2: shrinking. Tier 3: quarantined. A lower tier
  // always beats a higher one; inside a tier the roomiest host (free frames
  // across both tiers, lowest index on ties) wins.
  int best = -1;
  int best_tier = 4;
  uint64_t best_room = 0;
  for (int h = 0; h < static_cast<int>(loads.size()); ++h) {
    const HostLoad& load = loads[static_cast<size_t>(h)];
    if (load.down || load.excluded) {
      continue;
    }
    const int tier = load.quarantined ? 3 : load.shrinking ? 2 : 1;
    const uint64_t room = load.fmem_free_pages + load.far_free_pages;
    if (tier < best_tier || (tier == best_tier && room > best_room)) {
      best = h;
      best_tier = tier;
      best_room = room;
    }
  }
  return best;
}

bool PlacementController::Eligible(const HostLoad& load, uint64_t pages_needed,
                                   uint64_t fmem_pages_needed) const {
  if (load.excluded || load.shrinking || load.down || load.quarantined) {
    return false;
  }
  // Two constraints, and the second is the one that matters at scale. The
  // total-room check (with the headroom reserve kept free even after this
  // placement) guards against OOM: lazily backed tenants grow toward their
  // full commitment after admission, and shrink windows carve capacity with
  // no warning. The FMEM check guards against thrash: the newcomer's hot
  // set must fit in the near tier's uncommitted frames, because a host
  // whose remaining room is all SMEM will accept VMs by byte count forever
  // while every resident hot set fights over the same exhausted FMEM.
  const uint64_t reserve =
      static_cast<uint64_t>(headroom_ * static_cast<double>(load.capacity_pages));
  return load.fmem_free_pages >= fmem_pages_needed &&
         load.fmem_free_pages + load.far_free_pages >= pages_needed + reserve;
}

int PlacementController::PickHost(const std::vector<HostLoad>& loads, uint64_t pages_needed,
                                  uint64_t fmem_pages_needed) {
  int best = -1;
  double best_score = 0.0;
  for (int h = 0; h < static_cast<int>(loads.size()); ++h) {
    const HostLoad& load = loads[static_cast<size_t>(h)];
    if (!Eligible(load, pages_needed, fmem_pages_needed)) {
      continue;
    }
    switch (policy_) {
      case PlacementPolicy::kFirstFit:
        ++stats_.placements;
        return h;
      case PlacementPolicy::kBestFit: {
        // Tightest fit: the smallest score still big enough. Strict `<`
        // keeps the lowest index on ties.
        const double score = Score(load);
        if (best < 0 || score < best_score) {
          best = h;
          best_score = score;
        }
        break;
      }
      case PlacementPolicy::kSpread: {
        const HostLoad* incumbent = best < 0 ? nullptr : &loads[static_cast<size_t>(best)];
        if (incumbent == nullptr || load.resident_vms < incumbent->resident_vms ||
            (load.resident_vms == incumbent->resident_vms && Score(load) > best_score)) {
          best = h;
          best_score = Score(load);
        }
        break;
      }
    }
  }
  if (best >= 0) {
    ++stats_.placements;
  } else {
    ++stats_.rejects;
  }
  return best;
}

}  // namespace demeter
