#include "src/cluster/cluster.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <utility>

#include "src/base/logging.h"
#include "src/mem/host_memory.h"

namespace demeter {

namespace {

// Per-host seed stride: host 0 keeps the cluster seed bit-unchanged (the
// single-host cluster must be byte-identical to a bare Machine), and the
// golden-ratio stride separates neighbouring hosts' streams before the
// SplitMix64 whitening every consumer applies.
uint64_t HostSeed(uint64_t cluster_seed, int host) {
  return cluster_seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(host);
}

uint64_t PagesFor(const VmSetup& setup) {
  return (setup.vm.total_memory_bytes + kPageSize - 1) / kPageSize;
}

// The slice of a VM's commitment that wants to live in FMEM — its hot-set
// share under the configured tier ratio. Placement treats this as the part
// of the promise that must fit in the near tier.
uint64_t FmemShareFor(const VmSetup& setup) {
  return static_cast<uint64_t>(static_cast<double>(PagesFor(setup)) * setup.vm.fmem_ratio);
}

}  // namespace

Cluster::Cluster(const MachineConfig& config, const ClusterSetup& setup)
    : setup_(setup),
      placer_(setup.placement, setup.placement_headroom),
      check_invariants_(config.check_invariants) {
  DEMETER_CHECK_GE(setup_.num_hosts, 1) << "a cluster needs at least one host";
  DEMETER_CHECK_GT(setup_.epoch, 0) << "barrier epoch must be positive";
  hosts_.reserve(static_cast<size_t>(setup_.num_hosts));
  for (int h = 0; h < setup_.num_hosts; ++h) {
    MachineConfig host_config = config;
    host_config.seed = HostSeed(config.seed, h);
    if (!setup_.host_faults.empty()) {
      host_config.faults =
          setup_.host_faults[static_cast<size_t>(h) % setup_.host_faults.size()];
    }
    hosts_.push_back(std::make_unique<Machine>(host_config));
  }
  cooldown_until_.assign(hosts_.size(), 0);
  health_.assign(hosts_.size(), HostHealth{});
  // The cluster-scoped injector owns the migratefail and hostfail sites
  // (keyed by host, not VM); it deliberately seeds from the *cluster* seed,
  // so the per-host machines' injectors — seeded per host — never share
  // streams with it.
  if (!config.faults.empty()) {
    faults_ = std::make_unique<FaultInjector>(config.faults, config.seed);
    for (double p : config.faults.host_fail_p) {
      ha_active_ = ha_active_ || p > 0.0;
    }
  }
  migrator_ = std::make_unique<LiveMigrator>(setup_.migration, hosts_, faults_.get());

  MetricScope scope(&registry_, "cluster");
  scope.Gauge("hosts") = static_cast<double>(setup_.num_hosts);
  migrator_->RegisterMetrics(scope.Sub("migration"));
  MetricScope placement = scope.Sub("placement");
  placement.RegisterCounter("placements", &placer_.stats().placements);
  placement.RegisterCounter("rejects", &placer_.stats().rejects);
  placement.RegisterCounter("fallbacks", &placement_fallbacks_);
  placement.RegisterCounter("deferred", &deferred_placements_);
  scope.Sub("evacuation").RegisterCounter("no_destination", &evac_no_destination_);
  MetricScope migration = scope.Sub("migration");
  migration.RegisterCounter("retries", &migration_retries_);
  migration.RegisterCounter("retry_exhausted", &migration_retries_exhausted_);
  MetricScope ha = scope.Sub("ha");
  ha.RegisterCounter("host_failures", &hosts_failed_);
  ha.RegisterCounter("vms_killed", &vms_killed_);
  ha.RegisterCounter("vms_restarted", &vms_restarted_);
  ha.RegisterCounter("vms_lost", &vms_lost_);
  ha.RegisterCounter("transactions_lost", &transactions_lost_);
  ha.RegisterCounter("restart_latency_ns_total", &restart_latency_ns_total_);
  ha.RegisterCounterFn("restart_queue_depth",
                       [this] { return static_cast<uint64_t>(restart_queue_.size()); });
  if (faults_ != nullptr) {
    scope.Sub("fault").RegisterCounterFn("live_migrate_fail_injected", [this] {
      return faults_->total_injected(FaultSite::kLiveMigrateFail);
    });
    scope.Sub("fault").RegisterCounterFn("host_fail_injected", [this] {
      return faults_->total_injected(FaultSite::kHostFail);
    });
  }
}

int Cluster::AddVm(const VmSetup& setup) {
  DEMETER_CHECK(!ran_) << "AddVm after Run";
  const int i = static_cast<int>(setups_.size());
  setups_.push_back(setup);
  locations_.push_back(ClusterVmLocation{});
  return i;
}

const VmRunResult& Cluster::result(int i) const {
  const ClusterVmLocation& loc = locations_[static_cast<size_t>(i)];
  DEMETER_CHECK_GE(loc.host, 0) << "vm " << i << " was never placed";
  return hosts_[static_cast<size_t>(loc.host)]->result(loc.index);
}

std::vector<HostLoad> Cluster::Loads(const std::vector<Reservation>& reserved,
                                     const std::vector<int>& assigned_vms) const {
  // Live free counts overstate real headroom: a lazily-backed VM maps pages
  // as it touches them, so a freshly admitted tenant looks nearly weightless
  // at the next barrier and grows toward its full promise later. Charge
  // every resident VM its commitment (total memory, split into its FMEM
  // hot-set share and the far-tier remainder) minus what it has already
  // mapped, and charge in-flight migrations' full commitment to their
  // destination — stop-and-copy will materialize it all at once.
  std::vector<Reservation> committed(hosts_.size());
  for (size_t i = 0; i < setups_.size(); ++i) {
    const ClusterVmLocation& loc = locations_[i];
    if (loc.host < 0 || !hosts_[static_cast<size_t>(loc.host)]->VmActive(loc.index)) {
      continue;
    }
    const uint64_t share = FmemShareFor(setups_[i]);
    committed[static_cast<size_t>(loc.host)].fmem_pages += share;
    committed[static_cast<size_t>(loc.host)].far_pages += PagesFor(setups_[i]) - share;
  }
  // In-flight migrations come from the migrator's ledger, charged at Begin
  // and released exactly once when a migration retires — not recomputed
  // from the routes, so an aborted migration's claim cannot linger.
  const std::vector<LiveMigrator::Commitment>& inflight = migrator_->DstCommitments();
  for (size_t h = 0; h < hosts_.size(); ++h) {
    committed[h].fmem_pages += inflight[h].fmem_pages;
    committed[h].far_pages += inflight[h].far_pages;
  }
  std::vector<HostLoad> loads(hosts_.size());
  for (size_t h = 0; h < hosts_.size(); ++h) {
    Machine& machine = *hosts_[h];
    const HostMemory& mem = machine.hypervisor().memory();
    HostLoad& load = loads[h];
    load.fmem_free_pages = mem.FreePages(kFmemTier);
    const uint64_t used_fmem = mem.UsedPages(kFmemTier);
    for (int tier = kSmemTier; tier < mem.num_tiers(); ++tier) {
      load.far_free_pages += mem.FreePages(static_cast<TierIndex>(tier));
      load.far_used_pages += mem.UsedPages(static_cast<TierIndex>(tier));
    }
    for (int tier = 0; tier < mem.num_tiers(); ++tier) {
      load.capacity_pages += mem.CapacityPages(static_cast<TierIndex>(tier));
      load.poisoned_pages += mem.PoisonedPages(static_cast<TierIndex>(tier));
    }
    load.carved_pages = mem.CarvedPages(kFmemTier);
    load.resident_vms = machine.NumActiveVms() + assigned_vms[h];
    load.shrinking = machine.hypervisor().TierUnderShrink(kFmemTier);
    // Health feeds placement only while hostfail is armed: a fleet without
    // it must make byte-identical decisions to pre-HA builds.
    if (ha_active_) {
      const HostHealth& health = health_[h];
      load.down = health.down;
      load.quarantined = !health.down && barrier_ < health.quarantine_until_barrier;
      load.failures = health.failures;
      load.migration_aborts = health.migration_aborts;
    }
    // Uncommitted growth plus same-batch reservations drain each tier's
    // own share; FMEM overflow spills to far, like the first-touch
    // allocations they model.
    const Reservation& c = committed[h];
    const uint64_t growth_fmem =
        c.fmem_pages > used_fmem ? c.fmem_pages - used_fmem : 0;
    const uint64_t growth_far =
        c.far_pages > load.far_used_pages ? c.far_pages - load.far_used_pages : 0;
    const uint64_t want_fmem = growth_fmem + reserved[h].fmem_pages;
    const uint64_t from_fmem = std::min(want_fmem, load.fmem_free_pages);
    load.fmem_free_pages -= from_fmem;
    const uint64_t want_far = growth_far + reserved[h].far_pages + (want_fmem - from_fmem);
    load.far_free_pages -= std::min(want_far, load.far_free_pages);
  }
  return loads;
}

int Cluster::PlaceVm(const VmSetup& setup, const std::vector<Reservation>& reserved,
                     const std::vector<int>& assigned_vms) {
  const std::vector<HostLoad> loads = Loads(reserved, assigned_vms);
  int h = placer_.PickHost(loads, PagesFor(setup), FmemShareFor(setup));
  if (h < 0) {
    // No eligible host (all shrinking/quarantined/full). The VM must still
    // run somewhere, but never on a down or excluded host: the tiered
    // fallback prefers healthy hosts, then shrinking, then quarantined
    // (roomiest inside each tier), and returns -1 only when every host is
    // fenced — the caller defers the boot to a later barrier.
    h = PlacementController::PickFallbackHost(loads);
    if (h >= 0) {
      ++placement_fallbacks_;
    }
  }
  return h;
}

void Cluster::PlaceDue(Nanos now) {
  const std::vector<Reservation> no_reserved(hosts_.size());
  const std::vector<int> no_assigned(hosts_.size(), 0);
  std::vector<PendingVm> later;
  later.reserve(pending_.size());
  for (PendingVm& p : pending_) {
    if (p.setup.boot_at > now) {
      later.push_back(std::move(p));
      continue;
    }
    // Admission provisions synchronously, so each placement in this batch
    // sees the previous one's allocations — no reservations needed.
    const int h = PlaceVm(p.setup, no_reserved, no_assigned);
    if (h < 0) {
      // Every host is fenced right now; hold the boot for a later barrier.
      later.push_back(std::move(p));
      continue;
    }
    const int idx = hosts_[static_cast<size_t>(h)]->AdmitVm(p.setup, now);
    locations_[static_cast<size_t>(p.spec_index)] = ClusterVmLocation{h, idx};
    ++deferred_placements_;
  }
  pending_ = std::move(later);
}

void Cluster::MaybeEvacuate(Nanos now, int64_t barrier) {
  for (int h = 0; h < num_hosts(); ++h) {
    if (migrator_->inflight() >= setup_.migration.max_inflight) {
      return;
    }
    Machine& src = *hosts_[static_cast<size_t>(h)];
    if (!src.hypervisor().TierUnderShrink(kFmemTier)) {
      continue;
    }
    if (barrier < cooldown_until_[static_cast<size_t>(h)]) {
      continue;
    }
    // Victim: the cheapest VM to move — fewest mapped guest pages. Lowest
    // index breaks ties, so victim choice is deterministic.
    int victim = -1;
    uint64_t fewest = 0;
    for (int i = 0; i < src.num_vms(); ++i) {
      if (!src.VmActive(i) || migrator_->Migrating(h, i)) {
        continue;
      }
      const uint64_t pages = src.vm(i).kernel().mapped_pages();
      if (victim < 0 || pages < fewest) {
        victim = i;
        fewest = pages;
      }
    }
    if (victim < 0) {
      continue;
    }
    // The destination must absorb the victim's full commitment, not just
    // what it has mapped so far — the rest follows after stop-and-copy.
    uint64_t victim_pages = fewest;
    uint64_t victim_fmem = 0;
    for (size_t i = 0; i < setups_.size(); ++i) {
      if (locations_[i].host == h && locations_[i].index == victim) {
        victim_pages = PagesFor(setups_[i]);
        victim_fmem = FmemShareFor(setups_[i]);
        break;
      }
    }
    std::vector<HostLoad> loads =
        Loads(std::vector<Reservation>(hosts_.size()), std::vector<int>(hosts_.size(), 0));
    loads[static_cast<size_t>(h)].excluded = true;  // Shrinking also vetoes.
    const int dst = placer_.PickHost(loads, victim_pages, victim_fmem);
    cooldown_until_[static_cast<size_t>(h)] = barrier + setup_.migration.cooldown_epochs;
    if (dst < 0) {
      ++evac_no_destination_;
      continue;
    }
    migrator_->Begin(h, victim, dst,
                     LiveMigrator::Commitment{victim_fmem, victim_pages - victim_fmem}, now);
  }
}

int Cluster::SpecIndexOf(int host, int index) const {
  for (size_t i = 0; i < locations_.size(); ++i) {
    if (locations_[i].host == host && locations_[i].index == index) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Cluster::DetectHostFailures(Nanos now, int64_t barrier) {
  for (int h = 0; h < num_hosts(); ++h) {
    HostHealth& health = health_[static_cast<size_t>(h)];
    if (health.down) {
      if (now >= health.down_until) {
        // Resurrection: the host rejoins empty, on probation. Quarantine
        // keeps it out of strict placement until the window closes; the
        // fallback path may still use it as a last resort.
        health.down = false;
        health.quarantine_until_barrier = barrier + setup_.ha.quarantine_epochs;
      }
      continue;
    }
    if (faults_ == nullptr || h >= kMaxFaultHosts || !faults_->ShouldFailHost(h)) {
      continue;
    }
    // Fail-stop: fence first (placement exclusion is via health.down; every
    // in-flight route touching the host is torn down with its commitment
    // released), then kill the residents. Fencing precedes the migrator's
    // Advance so a doomed route is never mistaken for a cancel or charged
    // another pre-copy round against a dead machine.
    health.down = true;
    health.down_until = now + faults_->HostFailDuration(h);
    ++health.failures;
    ++hosts_failed_;
    for (const LiveMigrator::Completion& route : migrator_->FenceHost(h)) {
      if (route.src_host == h) {
        // The migrating VM died with its source host; the kill loop below
        // owns its recovery. Any stale retry entry is dropped when it next
        // comes due (the VM is no longer active at that location).
        continue;
      }
      // Destination died under an in-flight migration: the source VM is
      // still running. Charge the dead destination's health ledger and
      // queue a re-plan toward a fresh destination.
      ++health.migration_aborts;
      const int spec = SpecIndexOf(route.src_host, route.src_vm);
      if (spec >= 0 && setup_.migration.max_retries > 0) {
        RetryEntry* standing = nullptr;
        for (RetryEntry& entry : retry_queue_) {
          if (entry.spec_index == spec) {
            standing = &entry;
            break;
          }
        }
        if (standing == nullptr) {
          retry_queue_.push_back(RetryEntry{spec, 0, barrier + 1, false});
        } else {
          standing->inflight = false;
          standing->next_attempt_barrier = barrier + 1;
        }
      }
    }
    Machine& machine = *hosts_[static_cast<size_t>(h)];
    for (size_t i = 0; i < locations_.size(); ++i) {
      const ClusterVmLocation& loc = locations_[i];
      if (loc.host != h || !machine.VmActive(loc.index)) {
        continue;
      }
      transactions_lost_ += machine.KillVm(loc.index, now);
      ++vms_killed_;
      // The corpse can't migrate: drop any standing re-plan for it.
      std::erase_if(retry_queue_, [&](const RetryEntry& entry) {
        return entry.spec_index == static_cast<int>(i);
      });
      if (!setup_.ha.restart) {
        ++vms_lost_;  // No-recovery ablation: every kill is terminal.
      } else if (restart_queue_.size() >=
                 static_cast<size_t>(setup_.ha.restart_queue_limit)) {
        ++vms_lost_;  // Admission control: the queue is full, drop.
      } else {
        restart_queue_.push_back(RestartEntry{static_cast<int>(i), 0, barrier + 1, now});
      }
    }
  }
}

void Cluster::ProcessRestartQueue(Nanos now, int64_t barrier) {
  // FIFO with backoff: entries keep their arrival order; an entry not yet
  // due (or rejected this barrier) stays in line ahead of younger kills.
  std::deque<RestartEntry> keep;
  while (!restart_queue_.empty()) {
    RestartEntry entry = restart_queue_.front();
    restart_queue_.pop_front();
    if (entry.next_attempt_barrier > barrier) {
      keep.push_back(entry);
      continue;
    }
    // Strict placement only — no fallback. Restarting the backlog onto the
    // battered survivors would recreate the overload that admission
    // control exists to prevent.
    VmSetup setup = setups_[static_cast<size_t>(entry.spec_index)];
    setup.boot_at = 0;
    const std::vector<Reservation> no_reserved(hosts_.size());
    const std::vector<int> no_assigned(hosts_.size(), 0);
    const int h = placer_.PickHost(Loads(no_reserved, no_assigned), PagesFor(setup),
                                   FmemShareFor(setup));
    if (h < 0) {
      ++entry.attempts;
      if (entry.attempts >= setup_.ha.restart_max_attempts) {
        ++vms_lost_;
        continue;
      }
      entry.next_attempt_barrier = barrier + setup_.ha.restart_backoff_epochs;
      keep.push_back(entry);
      continue;
    }
    const int idx = hosts_[static_cast<size_t>(h)]->AdmitVm(setup, now, /*restarted=*/true);
    locations_[static_cast<size_t>(entry.spec_index)] = ClusterVmLocation{h, idx};
    ++vms_restarted_;
    restart_latency_ns_total_ += now - entry.killed_at;
  }
  restart_queue_ = std::move(keep);
}

void Cluster::ProcessMigrationRetries(Nanos now, int64_t barrier) {
  // Feed: every route migratefail aborted since the last barrier. The
  // source host's health ledger is charged regardless; the retry queue
  // only when retries are enabled (max_retries defaults to 0, keeping
  // pre-existing fleets byte-identical). Re-aborted retries re-surface
  // here and merge into their standing entry, so attempts accumulate.
  for (const LiveMigrator::Completion& route : migrator_->TakeAbortedRoutes()) {
    ++health_[static_cast<size_t>(route.src_host)].migration_aborts;
    if (setup_.migration.max_retries <= 0) {
      continue;
    }
    const int spec = SpecIndexOf(route.src_host, route.src_vm);
    if (spec < 0) {
      continue;
    }
    RetryEntry* standing = nullptr;
    for (RetryEntry& entry : retry_queue_) {
      if (entry.spec_index == spec) {
        standing = &entry;
        break;
      }
    }
    if (standing == nullptr) {
      retry_queue_.push_back(
          RetryEntry{spec, 1, barrier + setup_.migration.retry_backoff_epochs, false});
    } else {
      // A re-aborted attempt (round-0 or mid-copy) lands back here and
      // accumulates; resetting would let a flaky route retry forever.
      ++standing->attempts;
      standing->inflight = false;
      standing->next_attempt_barrier = barrier + setup_.migration.retry_backoff_epochs;
    }
  }
  if (retry_queue_.empty()) {
    return;
  }
  std::vector<RetryEntry> keep;
  keep.reserve(retry_queue_.size());
  for (RetryEntry& entry : retry_queue_) {
    if (entry.inflight) {
      keep.push_back(entry);  // An attempt is mid-copy; nothing to do yet.
      continue;
    }
    if (entry.attempts > setup_.migration.max_retries) {
      ++migration_retries_exhausted_;
      continue;
    }
    if (entry.next_attempt_barrier > barrier) {
      keep.push_back(entry);
      continue;
    }
    const ClusterVmLocation& loc = locations_[static_cast<size_t>(entry.spec_index)];
    if (loc.host < 0 || !hosts_[static_cast<size_t>(loc.host)]->VmActive(loc.index) ||
        migrator_->Migrating(loc.host, loc.index)) {
      continue;  // Stale: the VM finished, died, or is already moving again.
    }
    if (migrator_->inflight() >= setup_.migration.max_inflight) {
      keep.push_back(entry);  // Congestion, not failure: re-check next barrier.
      continue;
    }
    // Destination re-selection against the current load picture, source
    // excluded (and any down host implicitly, via Eligible).
    const uint64_t pages = PagesFor(setups_[static_cast<size_t>(entry.spec_index)]);
    const uint64_t fmem = FmemShareFor(setups_[static_cast<size_t>(entry.spec_index)]);
    std::vector<HostLoad> loads =
        Loads(std::vector<Reservation>(hosts_.size()), std::vector<int>(hosts_.size(), 0));
    loads[static_cast<size_t>(loc.host)].excluded = true;
    const int dst = placer_.PickHost(loads, pages, fmem);
    if (dst < 0) {
      ++entry.attempts;
      if (entry.attempts > setup_.migration.max_retries) {
        ++migration_retries_exhausted_;
        continue;
      }
      entry.next_attempt_barrier = barrier + setup_.migration.retry_backoff_epochs;
      keep.push_back(entry);
      continue;
    }
    ++migration_retries_;
    if (migrator_->Begin(loc.host, loc.index, dst,
                         LiveMigrator::Commitment{fmem, pages - fmem}, now)) {
      // In flight again: the entry rides along until the migration
      // completes (purged in Run's completion loop) or re-aborts (merged
      // above at a later barrier).
      entry.inflight = true;
    }
    // Round-0 re-abort: the route is already in the migrator's aborted
    // list and merges into this entry at the next barrier.
    keep.push_back(entry);
  }
  retry_queue_ = std::move(keep);
}

void Cluster::AuditHaInvariants() const {
  std::vector<bool> down(hosts_.size(), false);
  std::vector<int> active(hosts_.size(), 0);
  for (size_t h = 0; h < hosts_.size(); ++h) {
    down[h] = health_[h].down;
    active[h] = hosts_[h]->NumActiveVms();
  }
  std::vector<InvariantChecker::RouteEntry> routes;
  for (const LiveMigrator::Completion& route : migrator_->InflightRoutes()) {
    routes.push_back({route.src_host, route.dst_host});
  }
  std::vector<InvariantChecker::CommitmentEntry> ledger;
  const std::vector<LiveMigrator::Commitment>& committed = migrator_->DstCommitments();
  for (size_t h = 0; h < committed.size(); ++h) {
    ledger.push_back({static_cast<int>(h), committed[h].fmem_pages, committed[h].far_pages});
  }
  InvariantReport report;
  InvariantChecker::CheckHostFencing(down, active, routes, ledger, &report);
  InvariantChecker::CheckRestartConservation(vms_killed_, vms_restarted_, restart_queue_.size(),
                                             vms_lost_, &report);
  DEMETER_CHECK(report.ok()) << "host-failure invariants: " << report.Join();
}

void Cluster::Run() {
  DEMETER_CHECK(!ran_) << "Run called twice";
  ran_ = true;

  if (hosts_.size() == 1) {
    // Degenerate fleet: exactly a bare Machine. Deferred boots flow through
    // the machine's own boot_at path, and no barrier control plane runs
    // (evacuation needs a second host) — byte-identity is structural.
    for (size_t i = 0; i < setups_.size(); ++i) {
      locations_[i] = ClusterVmLocation{0, hosts_[0]->AddVm(setups_[i])};
    }
    hosts_[0]->Run();
    return;
  }

  // Place boot-at-zero VMs up front, in spec order; queue deferred boots.
  std::vector<Reservation> reserved(hosts_.size());
  std::vector<int> assigned(hosts_.size(), 0);
  for (size_t i = 0; i < setups_.size(); ++i) {
    const VmSetup& setup = setups_[i];
    if (setup.boot_at != 0) {
      pending_.push_back(PendingVm{static_cast<int>(i), setup});
      continue;
    }
    const int h = PlaceVm(setup, reserved, assigned);
    DEMETER_CHECK_GE(h, 0) << "no live host for boot-time placement of vm " << i;
    locations_[i] = ClusterVmLocation{h, hosts_[static_cast<size_t>(h)]->AddVm(setup)};
    const uint64_t share = FmemShareFor(setup);
    reserved[static_cast<size_t>(h)].fmem_pages += share;
    reserved[static_cast<size_t>(h)].far_pages += PagesFor(setup) - share;
    ++assigned[static_cast<size_t>(h)];
  }

  for (auto& host : hosts_) {
    host->StartRun();
  }

  const Nanos epoch = setup_.epoch;
  Nanos t = 0;
  int64_t barrier = 0;
  while (true) {
    bool any_active = false;
    for (const auto& host : hosts_) {
      any_active = any_active || host->NumActiveVms() > 0;
    }
    if (!any_active && migrator_->inflight() == 0 && restart_queue_.empty()) {
      if (pending_.empty()) {
        break;  // Fleet drained.
      }
      // Only deferred boots remain: jump the grid to the first due barrier
      // instead of spinning empty epochs.
      Nanos due = pending_.front().setup.boot_at;
      for (const PendingVm& p : pending_) {
        due = std::min(due, p.setup.boot_at);
      }
      const Nanos due_barrier = ((due + epoch - 1) / epoch) * epoch;
      if (due_barrier > t + epoch) {
        t = due_barrier - epoch;
      }
    }
    t += epoch;
    ++barrier;
    barrier_ = barrier;
    if (std::getenv("DEMETER_CLUSTER_DEBUG") != nullptr) {
      int active = 0;
      for (const auto& host : hosts_) {
        active += host->NumActiveVms();
      }
      std::fprintf(stderr, "[cluster] barrier=%lld t=%llu active=%d inflight=%d pending=%zu\n",
                   static_cast<long long>(barrier), static_cast<unsigned long long>(t), active,
                   migrator_->inflight(), pending_.size());
    }
    for (auto& host : hosts_) {
      host->StepUntil(t);
    }
    // Barrier control plane, fixed order: the failure detector runs first
    // (a fenced route must not be misread as a completion or cancel by
    // Advance), then finish/advance surviving migrations (freed capacity
    // helps placement), then boot due VMs, then recovery (restarts before
    // retries — a restarted VM frees nothing, but the ordering is pinned
    // for determinism), then new evacuations against the post-placement
    // load picture.
    if (ha_active_) {
      DetectHostFailures(t, barrier);
    }
    const std::vector<LiveMigrator::Completion> completions = migrator_->Advance(t);
    for (const LiveMigrator::Completion& c : completions) {
      for (size_t i = 0; i < locations_.size(); ++i) {
        ClusterVmLocation& loc = locations_[i];
        if (loc.host == c.src_host && loc.index == c.src_vm) {
          loc = ClusterVmLocation{c.dst_host, c.dst_vm};
          // The VM landed: retire any standing retry entry for it.
          std::erase_if(retry_queue_, [&](const RetryEntry& entry) {
            return entry.spec_index == static_cast<int>(i);
          });
          break;
        }
      }
    }
    PlaceDue(t);
    if (ha_active_ && setup_.ha.restart) {
      ProcessRestartQueue(t, barrier);
    }
    if (ha_active_ || setup_.migration.max_retries > 0) {
      ProcessMigrationRetries(t, barrier);
    }
    if (setup_.migration.evacuate_on_shrink) {
      MaybeEvacuate(t, barrier);
    }
    if (check_invariants_) {
      const InvariantReport report = migrator_->AuditCommitments();
      DEMETER_CHECK(report.ok()) << "commitment conservation: " << report.Join();
      if (ha_active_) {
        AuditHaInvariants();
      }
    }
  }

  for (auto& host : hosts_) {
    host->FinishRun();
  }
}

MetricSnapshot Cluster::SnapshotMetrics() const {
  if (hosts_.size() == 1) {
    return hosts_[0]->SnapshotMetrics();
  }
  std::vector<MetricSnapshot> parts;
  parts.reserve(hosts_.size() + 1);
  for (size_t h = 0; h < hosts_.size(); ++h) {
    parts.push_back(
        RebaseMetricSnapshot(hosts_[h]->SnapshotMetrics(), "host" + std::to_string(h)));
  }
  parts.push_back(registry_.Snapshot());
  return MergeMetricSnapshots(std::move(parts));
}

std::vector<TraceEvent> Cluster::TakeTrace() {
  std::vector<TraceEvent> events;
  for (auto& host : hosts_) {
    std::vector<TraceEvent> part = host->TakeTrace();
    events.insert(events.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  return events;
}

}  // namespace demeter
