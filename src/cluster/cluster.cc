#include "src/cluster/cluster.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <utility>

#include "src/base/logging.h"
#include "src/mem/host_memory.h"

namespace demeter {

namespace {

// Per-host seed stride: host 0 keeps the cluster seed bit-unchanged (the
// single-host cluster must be byte-identical to a bare Machine), and the
// golden-ratio stride separates neighbouring hosts' streams before the
// SplitMix64 whitening every consumer applies.
uint64_t HostSeed(uint64_t cluster_seed, int host) {
  return cluster_seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(host);
}

uint64_t PagesFor(const VmSetup& setup) {
  return (setup.vm.total_memory_bytes + kPageSize - 1) / kPageSize;
}

// The slice of a VM's commitment that wants to live in FMEM — its hot-set
// share under the configured tier ratio. Placement treats this as the part
// of the promise that must fit in the near tier.
uint64_t FmemShareFor(const VmSetup& setup) {
  return static_cast<uint64_t>(static_cast<double>(PagesFor(setup)) * setup.vm.fmem_ratio);
}

}  // namespace

Cluster::Cluster(const MachineConfig& config, const ClusterSetup& setup)
    : setup_(setup),
      placer_(setup.placement, setup.placement_headroom),
      check_invariants_(config.check_invariants) {
  DEMETER_CHECK_GE(setup_.num_hosts, 1) << "a cluster needs at least one host";
  DEMETER_CHECK_GT(setup_.epoch, 0) << "barrier epoch must be positive";
  hosts_.reserve(static_cast<size_t>(setup_.num_hosts));
  for (int h = 0; h < setup_.num_hosts; ++h) {
    MachineConfig host_config = config;
    host_config.seed = HostSeed(config.seed, h);
    if (!setup_.host_faults.empty()) {
      host_config.faults =
          setup_.host_faults[static_cast<size_t>(h) % setup_.host_faults.size()];
    }
    hosts_.push_back(std::make_unique<Machine>(host_config));
  }
  cooldown_until_.assign(hosts_.size(), 0);
  // The cluster-scoped injector owns the migratefail site (keyed by source
  // host, not VM); it deliberately seeds from the *cluster* seed, so the
  // per-host machines' injectors — seeded per host — never share streams
  // with it.
  if (!config.faults.empty()) {
    faults_ = std::make_unique<FaultInjector>(config.faults, config.seed);
  }
  migrator_ = std::make_unique<LiveMigrator>(setup_.migration, hosts_, faults_.get());

  MetricScope scope(&registry_, "cluster");
  scope.Gauge("hosts") = static_cast<double>(setup_.num_hosts);
  migrator_->RegisterMetrics(scope.Sub("migration"));
  MetricScope placement = scope.Sub("placement");
  placement.RegisterCounter("placements", &placer_.stats().placements);
  placement.RegisterCounter("rejects", &placer_.stats().rejects);
  placement.RegisterCounter("fallbacks", &placement_fallbacks_);
  placement.RegisterCounter("deferred", &deferred_placements_);
  scope.Sub("evacuation").RegisterCounter("no_destination", &evac_no_destination_);
  if (faults_ != nullptr) {
    scope.Sub("fault").RegisterCounterFn("live_migrate_fail_injected", [this] {
      return faults_->total_injected(FaultSite::kLiveMigrateFail);
    });
  }
}

int Cluster::AddVm(const VmSetup& setup) {
  DEMETER_CHECK(!ran_) << "AddVm after Run";
  const int i = static_cast<int>(setups_.size());
  setups_.push_back(setup);
  locations_.push_back(ClusterVmLocation{});
  return i;
}

const VmRunResult& Cluster::result(int i) const {
  const ClusterVmLocation& loc = locations_[static_cast<size_t>(i)];
  DEMETER_CHECK_GE(loc.host, 0) << "vm " << i << " was never placed";
  return hosts_[static_cast<size_t>(loc.host)]->result(loc.index);
}

std::vector<HostLoad> Cluster::Loads(const std::vector<Reservation>& reserved,
                                     const std::vector<int>& assigned_vms) const {
  // Live free counts overstate real headroom: a lazily-backed VM maps pages
  // as it touches them, so a freshly admitted tenant looks nearly weightless
  // at the next barrier and grows toward its full promise later. Charge
  // every resident VM its commitment (total memory, split into its FMEM
  // hot-set share and the far-tier remainder) minus what it has already
  // mapped, and charge in-flight migrations' full commitment to their
  // destination — stop-and-copy will materialize it all at once.
  std::vector<Reservation> committed(hosts_.size());
  for (size_t i = 0; i < setups_.size(); ++i) {
    const ClusterVmLocation& loc = locations_[i];
    if (loc.host < 0 || !hosts_[static_cast<size_t>(loc.host)]->VmActive(loc.index)) {
      continue;
    }
    const uint64_t share = FmemShareFor(setups_[i]);
    committed[static_cast<size_t>(loc.host)].fmem_pages += share;
    committed[static_cast<size_t>(loc.host)].far_pages += PagesFor(setups_[i]) - share;
  }
  // In-flight migrations come from the migrator's ledger, charged at Begin
  // and released exactly once when a migration retires — not recomputed
  // from the routes, so an aborted migration's claim cannot linger.
  const std::vector<LiveMigrator::Commitment>& inflight = migrator_->DstCommitments();
  for (size_t h = 0; h < hosts_.size(); ++h) {
    committed[h].fmem_pages += inflight[h].fmem_pages;
    committed[h].far_pages += inflight[h].far_pages;
  }
  std::vector<HostLoad> loads(hosts_.size());
  for (size_t h = 0; h < hosts_.size(); ++h) {
    Machine& machine = *hosts_[h];
    const HostMemory& mem = machine.hypervisor().memory();
    HostLoad& load = loads[h];
    load.fmem_free_pages = mem.FreePages(kFmemTier);
    const uint64_t used_fmem = mem.UsedPages(kFmemTier);
    for (int tier = kSmemTier; tier < mem.num_tiers(); ++tier) {
      load.far_free_pages += mem.FreePages(static_cast<TierIndex>(tier));
      load.far_used_pages += mem.UsedPages(static_cast<TierIndex>(tier));
    }
    for (int tier = 0; tier < mem.num_tiers(); ++tier) {
      load.capacity_pages += mem.CapacityPages(static_cast<TierIndex>(tier));
      load.poisoned_pages += mem.PoisonedPages(static_cast<TierIndex>(tier));
    }
    load.carved_pages = mem.CarvedPages(kFmemTier);
    load.resident_vms = machine.NumActiveVms() + assigned_vms[h];
    load.shrinking = machine.hypervisor().TierUnderShrink(kFmemTier);
    // Uncommitted growth plus same-batch reservations drain each tier's
    // own share; FMEM overflow spills to far, like the first-touch
    // allocations they model.
    const Reservation& c = committed[h];
    const uint64_t growth_fmem =
        c.fmem_pages > used_fmem ? c.fmem_pages - used_fmem : 0;
    const uint64_t growth_far =
        c.far_pages > load.far_used_pages ? c.far_pages - load.far_used_pages : 0;
    const uint64_t want_fmem = growth_fmem + reserved[h].fmem_pages;
    const uint64_t from_fmem = std::min(want_fmem, load.fmem_free_pages);
    load.fmem_free_pages -= from_fmem;
    const uint64_t want_far = growth_far + reserved[h].far_pages + (want_fmem - from_fmem);
    load.far_free_pages -= std::min(want_far, load.far_free_pages);
  }
  return loads;
}

int Cluster::PlaceVm(const VmSetup& setup, const std::vector<Reservation>& reserved,
                     const std::vector<int>& assigned_vms) {
  const std::vector<HostLoad> loads = Loads(reserved, assigned_vms);
  int h = placer_.PickHost(loads, PagesFor(setup), FmemShareFor(setup));
  if (h < 0) {
    // No eligible host (all shrinking/full). The VM must still run
    // somewhere: fall back to the roomiest host, lowest index on ties.
    uint64_t best_room = 0;
    for (int c = 0; c < num_hosts(); ++c) {
      const uint64_t room = loads[static_cast<size_t>(c)].fmem_free_pages +
                            loads[static_cast<size_t>(c)].far_free_pages;
      if (h < 0 || room > best_room) {
        h = c;
        best_room = room;
      }
    }
    ++placement_fallbacks_;
  }
  DEMETER_CHECK_GE(h, 0);
  return h;
}

void Cluster::PlaceDue(Nanos now) {
  const std::vector<Reservation> no_reserved(hosts_.size());
  const std::vector<int> no_assigned(hosts_.size(), 0);
  std::vector<PendingVm> later;
  later.reserve(pending_.size());
  for (PendingVm& p : pending_) {
    if (p.setup.boot_at > now) {
      later.push_back(std::move(p));
      continue;
    }
    // Admission provisions synchronously, so each placement in this batch
    // sees the previous one's allocations — no reservations needed.
    const int h = PlaceVm(p.setup, no_reserved, no_assigned);
    const int idx = hosts_[static_cast<size_t>(h)]->AdmitVm(p.setup, now);
    locations_[static_cast<size_t>(p.spec_index)] = ClusterVmLocation{h, idx};
    ++deferred_placements_;
  }
  pending_ = std::move(later);
}

void Cluster::MaybeEvacuate(Nanos now, int64_t barrier) {
  for (int h = 0; h < num_hosts(); ++h) {
    if (migrator_->inflight() >= setup_.migration.max_inflight) {
      return;
    }
    Machine& src = *hosts_[static_cast<size_t>(h)];
    if (!src.hypervisor().TierUnderShrink(kFmemTier)) {
      continue;
    }
    if (barrier < cooldown_until_[static_cast<size_t>(h)]) {
      continue;
    }
    // Victim: the cheapest VM to move — fewest mapped guest pages. Lowest
    // index breaks ties, so victim choice is deterministic.
    int victim = -1;
    uint64_t fewest = 0;
    for (int i = 0; i < src.num_vms(); ++i) {
      if (!src.VmActive(i) || migrator_->Migrating(h, i)) {
        continue;
      }
      const uint64_t pages = src.vm(i).kernel().mapped_pages();
      if (victim < 0 || pages < fewest) {
        victim = i;
        fewest = pages;
      }
    }
    if (victim < 0) {
      continue;
    }
    // The destination must absorb the victim's full commitment, not just
    // what it has mapped so far — the rest follows after stop-and-copy.
    uint64_t victim_pages = fewest;
    uint64_t victim_fmem = 0;
    for (size_t i = 0; i < setups_.size(); ++i) {
      if (locations_[i].host == h && locations_[i].index == victim) {
        victim_pages = PagesFor(setups_[i]);
        victim_fmem = FmemShareFor(setups_[i]);
        break;
      }
    }
    std::vector<HostLoad> loads =
        Loads(std::vector<Reservation>(hosts_.size()), std::vector<int>(hosts_.size(), 0));
    loads[static_cast<size_t>(h)].excluded = true;  // Shrinking also vetoes.
    const int dst = placer_.PickHost(loads, victim_pages, victim_fmem);
    cooldown_until_[static_cast<size_t>(h)] = barrier + setup_.migration.cooldown_epochs;
    if (dst < 0) {
      ++evac_no_destination_;
      continue;
    }
    migrator_->Begin(h, victim, dst,
                     LiveMigrator::Commitment{victim_fmem, victim_pages - victim_fmem}, now);
  }
}

void Cluster::Run() {
  DEMETER_CHECK(!ran_) << "Run called twice";
  ran_ = true;

  if (hosts_.size() == 1) {
    // Degenerate fleet: exactly a bare Machine. Deferred boots flow through
    // the machine's own boot_at path, and no barrier control plane runs
    // (evacuation needs a second host) — byte-identity is structural.
    for (size_t i = 0; i < setups_.size(); ++i) {
      locations_[i] = ClusterVmLocation{0, hosts_[0]->AddVm(setups_[i])};
    }
    hosts_[0]->Run();
    return;
  }

  // Place boot-at-zero VMs up front, in spec order; queue deferred boots.
  std::vector<Reservation> reserved(hosts_.size());
  std::vector<int> assigned(hosts_.size(), 0);
  for (size_t i = 0; i < setups_.size(); ++i) {
    const VmSetup& setup = setups_[i];
    if (setup.boot_at != 0) {
      pending_.push_back(PendingVm{static_cast<int>(i), setup});
      continue;
    }
    const int h = PlaceVm(setup, reserved, assigned);
    locations_[i] = ClusterVmLocation{h, hosts_[static_cast<size_t>(h)]->AddVm(setup)};
    const uint64_t share = FmemShareFor(setup);
    reserved[static_cast<size_t>(h)].fmem_pages += share;
    reserved[static_cast<size_t>(h)].far_pages += PagesFor(setup) - share;
    ++assigned[static_cast<size_t>(h)];
  }

  for (auto& host : hosts_) {
    host->StartRun();
  }

  const Nanos epoch = setup_.epoch;
  Nanos t = 0;
  int64_t barrier = 0;
  while (true) {
    bool any_active = false;
    for (const auto& host : hosts_) {
      any_active = any_active || host->NumActiveVms() > 0;
    }
    if (!any_active && migrator_->inflight() == 0) {
      if (pending_.empty()) {
        break;  // Fleet drained.
      }
      // Only deferred boots remain: jump the grid to the first due barrier
      // instead of spinning empty epochs.
      Nanos due = pending_.front().setup.boot_at;
      for (const PendingVm& p : pending_) {
        due = std::min(due, p.setup.boot_at);
      }
      const Nanos due_barrier = ((due + epoch - 1) / epoch) * epoch;
      if (due_barrier > t + epoch) {
        t = due_barrier - epoch;
      }
    }
    t += epoch;
    ++barrier;
    if (std::getenv("DEMETER_CLUSTER_DEBUG") != nullptr) {
      int active = 0;
      for (const auto& host : hosts_) {
        active += host->NumActiveVms();
      }
      std::fprintf(stderr, "[cluster] barrier=%lld t=%llu active=%d inflight=%d pending=%zu\n",
                   static_cast<long long>(barrier), static_cast<unsigned long long>(t), active,
                   migrator_->inflight(), pending_.size());
    }
    for (auto& host : hosts_) {
      host->StepUntil(t);
    }
    // Barrier control plane, fixed order: finish/advance migrations first
    // (freed capacity helps placement), then boot due VMs, then start new
    // evacuations against the post-placement load picture.
    const std::vector<LiveMigrator::Completion> completions = migrator_->Advance(t);
    for (const LiveMigrator::Completion& c : completions) {
      for (ClusterVmLocation& loc : locations_) {
        if (loc.host == c.src_host && loc.index == c.src_vm) {
          loc = ClusterVmLocation{c.dst_host, c.dst_vm};
          break;
        }
      }
    }
    PlaceDue(t);
    if (setup_.migration.evacuate_on_shrink) {
      MaybeEvacuate(t, barrier);
    }
    if (check_invariants_) {
      const InvariantReport report = migrator_->AuditCommitments();
      DEMETER_CHECK(report.ok()) << "commitment conservation: " << report.Join();
    }
  }

  for (auto& host : hosts_) {
    host->FinishRun();
  }
}

MetricSnapshot Cluster::SnapshotMetrics() const {
  if (hosts_.size() == 1) {
    return hosts_[0]->SnapshotMetrics();
  }
  std::vector<MetricSnapshot> parts;
  parts.reserve(hosts_.size() + 1);
  for (size_t h = 0; h < hosts_.size(); ++h) {
    parts.push_back(
        RebaseMetricSnapshot(hosts_[h]->SnapshotMetrics(), "host" + std::to_string(h)));
  }
  parts.push_back(registry_.Snapshot());
  return MergeMetricSnapshots(std::move(parts));
}

std::vector<TraceEvent> Cluster::TakeTrace() {
  std::vector<TraceEvent> events;
  for (auto& host : hosts_) {
    std::vector<TraceEvent> part = host->TakeTrace();
    events.insert(events.end(), std::make_move_iterator(part.begin()),
                  std::make_move_iterator(part.end()));
  }
  return events;
}

}  // namespace demeter
