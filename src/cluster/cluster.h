// Multi-host fleet simulation: composes N Machines into one deterministic
// cluster with VM placement and pre-copy live migration.
//
// Hosts advance independently between epoch-synchronized barriers: each
// barrier StepUntil()s every host to the same virtual time, then runs the
// fleet-level control plane — migration rounds, due deferred boots, and
// shrink-window evacuations — in a fixed order. Everything the control
// plane reads is a deterministic function of host state at the barrier, and
// each host's seed derives from the cluster seed by host index
// (`seed + golden_ratio * h`), so the whole fleet is byte-reproducible:
// --jobs=1 and --jobs=8 runs of a cluster spec are identical.
//
// The single-host cluster is the degenerate case and is *exactly* a bare
// Machine: host 0 gets the cluster seed unchanged, every VM (deferred or
// not) is handed straight to Machine::AddVm, no barrier control plane runs
// (evacuation needs a second host), and SnapshotMetrics() returns host 0's
// registry verbatim. A regression test pins byte-identity.
//
// Multi-host snapshots re-namespace each host under "host<h>/..."
// ("host<h>/vm<i>/..." for the per-VM trees) and append a "cluster/..."
// roll-up of placement and migration counters.

#ifndef DEMETER_SRC_CLUSTER_CLUSTER_H_
#define DEMETER_SRC_CLUSTER_CLUSTER_H_

#include <deque>
#include <memory>
#include <vector>

#include "src/cluster/live_migrator.h"
#include "src/cluster/placement.h"
#include "src/harness/machine.h"

namespace demeter {

// Host-failure recovery tuning. A VM killed by a `hostfail` fail-stop
// enters a bounded FIFO restart queue; each barrier the queue head(s) due
// for an attempt ask the placement controller for a surviving host under
// the *strict* eligibility rules (no fallback — admission control under
// degraded capacity), backing off on rejection and giving the VM up as
// lost after `restart_max_attempts`. Defaults are folded into the spec
// content hash only when changed, so pre-existing cluster specs keep their
// seeds.
struct HaConfig {
  bool restart = true;            // Re-place killed VMs on surviving hosts.
  int restart_queue_limit = 64;   // Kills beyond this are lost outright.
  int restart_backoff_epochs = 2;  // Barriers between attempts per VM.
  int restart_max_attempts = 8;   // Rejections before the VM is lost.
  int quarantine_epochs = 8;      // Probation barriers after resurrection.

  friend bool operator==(const HaConfig&, const HaConfig&) = default;
};

// Fleet topology + control-plane tuning. The default (num_hosts == 0) means
// "no cluster": the runner takes the classic single-Machine path and the
// spec content hash is bit-identical to builds that predate this subsystem.
struct ClusterSetup {
  int num_hosts = 0;  // 0 = bare Machine path; >= 1 builds a Cluster.
  Nanos epoch = 10 * kMillisecond;  // Barrier pitch.
  PlacementPolicy placement = PlacementPolicy::kFirstFit;
  // Fraction of each host's capacity the placement controller keeps
  // uncommitted — the slack that absorbs shrink carves and lazy-backing
  // growth. A host packed to the last frame is one fault from OOM.
  double placement_headroom = 0.1;
  MigrationConfig migration;
  HaConfig ha;
  // Per-host fault plans (host h uses host_faults[h % size]); empty = every
  // host runs the machine config's shared plan. This is how a sweep arms
  // staggered tiershrink windows on specific hosts.
  std::vector<FaultPlan> host_faults;

  bool IsDefault() const { return *this == ClusterSetup{}; }
  friend bool operator==(const ClusterSetup&, const ClusterSetup&) = default;
};

// Where a spec VM currently lives: host index + VM index on that host.
// Updated as migrations complete; final values locate the VM's results.
struct ClusterVmLocation {
  int host = -1;
  int index = -1;
};

class Cluster {
 public:
  // `config` is the per-host machine template; config.seed is the cluster
  // seed (host h runs at seed + 0x9e3779b97f4a7c15 * h).
  Cluster(const MachineConfig& config, const ClusterSetup& setup);

  // Registers a VM with the fleet; returns its cluster-wide index.
  // Placement happens at Run() (boot_at == 0) or at the first barrier past
  // its boot_at. Call before Run().
  int AddVm(const VmSetup& setup);

  // Places and runs the whole fleet to completion.
  void Run();

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  Machine& host(int h) { return *hosts_[static_cast<size_t>(h)]; }
  int num_vms() const { return static_cast<int>(setups_.size()); }

  // VM i's current (post-Run: final) location and its run result.
  const ClusterVmLocation& location(int i) const { return locations_[static_cast<size_t>(i)]; }
  const VmRunResult& result(int i) const;

  // Single host: host 0's registry verbatim. Multi-host: every host
  // re-namespaced under "host<h>/" plus the "cluster/" roll-up.
  MetricSnapshot SnapshotMetrics() const;

  // Trace events from every host, concatenated in host order.
  std::vector<TraceEvent> TakeTrace();

  const LiveMigrator& migrator() const { return *migrator_; }
  const LiveMigrator::Stats& migration_stats() const { return migrator_->stats(); }
  const PlacementController::Stats& placement_stats() const { return placer_.stats(); }
  uint64_t evacuations_without_destination() const { return evac_no_destination_; }

  // ---- host-failure recovery ledger ---------------------------------------
  // Conservation: vms_killed == vms_restarted + restart_queue_depth +
  // vms_lost at every barrier (invariant 11, audited under --check).
  uint64_t hosts_failed() const { return hosts_failed_; }
  uint64_t vms_killed() const { return vms_killed_; }
  uint64_t vms_restarted() const { return vms_restarted_; }
  uint64_t vms_lost() const { return vms_lost_; }
  uint64_t restart_queue_depth() const { return restart_queue_.size(); }
  uint64_t transactions_lost() const { return transactions_lost_; }
  uint64_t restart_latency_ns_total() const { return restart_latency_ns_total_; }
  uint64_t migration_retries() const { return migration_retries_; }
  uint64_t migration_retries_exhausted() const { return migration_retries_exhausted_; }
  bool host_down(int h) const { return health_[static_cast<size_t>(h)].down; }

 private:
  struct PendingVm {
    int spec_index = -1;
    VmSetup setup;
  };

  // Failure detector's per-host ledger. `down`/`quarantine_until_barrier`
  // gate placement; `failures`/`migration_aborts` feed Score via Loads()
  // (only while hostfail is armed, so fleets without it are unperturbed).
  struct HostHealth {
    bool down = false;
    Nanos down_until = 0;                  // Virtual time the host resurrects.
    int64_t quarantine_until_barrier = 0;  // Probation while barrier < this.
    uint64_t failures = 0;
    uint64_t migration_aborts = 0;
  };

  // One killed VM awaiting re-placement (FIFO).
  struct RestartEntry {
    int spec_index = -1;
    int attempts = 0;                  // Strict-placement rejections so far.
    int64_t next_attempt_barrier = 0;  // Backoff gate.
    Nanos killed_at = 0;               // For restart latency accounting.
  };

  // One aborted migration route awaiting re-plan, keyed by the VM (spec
  // index) so a route survives the source host changing under it. The
  // entry lives until the VM's migration completes, the VM dies or
  // finishes, or the attempt budget runs out — a re-launched attempt keeps
  // the entry (inflight=true) so a re-abort accumulates attempts instead
  // of resetting them.
  struct RetryEntry {
    int spec_index = -1;
    int attempts = 0;                  // Aborts + no-destination rejections.
    int64_t next_attempt_barrier = 0;  // Backoff gate.
    bool inflight = false;             // A retry attempt is mid-copy now.
  };

  // A not-yet-provisioned commitment against one host, split the way the
  // VM's pages will land: its FMEM hot-set share and the far remainder.
  struct Reservation {
    uint64_t fmem_pages = 0;
    uint64_t far_pages = 0;
  };

  // Live load summary for every host; `reserved`/`assigned` fold in VMs
  // placed earlier in the same pre-run batch (not yet provisioned).
  std::vector<HostLoad> Loads(const std::vector<Reservation>& reserved,
                              const std::vector<int>& assigned_vms) const;
  // Places a VM with `setup`'s footprint on the best host; falls back to
  // the roomiest *live* host when no host is eligible (a VM must run
  // somewhere, but never on a down/excluded host). Returns -1 only when
  // every host is down or excluded — the caller defers the boot.
  int PlaceVm(const VmSetup& setup, const std::vector<Reservation>& reserved,
              const std::vector<int>& assigned_vms);
  void PlaceDue(Nanos now);
  void MaybeEvacuate(Nanos now, int64_t barrier);
  // Maps a host-resident VM back to its spec index (-1 when unknown).
  int SpecIndexOf(int host, int index) const;
  // Barrier-time failure detector: draws hostfail per up host, fences the
  // victims (migrator routes torn down, resident VMs killed, restart /
  // retry queues fed) and resurrects hosts whose window closed.
  void DetectHostFailures(Nanos now, int64_t barrier);
  // Restart-queue pump: strict placement for due entries, backoff on
  // rejection, loss after restart_max_attempts.
  void ProcessRestartQueue(Nanos now, int64_t barrier);
  // Drains the migrator's aborted routes into the retry queue (when
  // migration.max_retries > 0) and re-plans due entries toward a fresh
  // destination.
  void ProcessMigrationRetries(Nanos now, int64_t barrier);
  // Invariant families 10 + 11 (down-host fencing, restart conservation).
  void AuditHaInvariants() const;

  ClusterSetup setup_;
  MetricRegistry registry_;  // "cluster/..." roll-up metrics.
  std::vector<std::unique_ptr<Machine>> hosts_;
  std::unique_ptr<FaultInjector> faults_;  // Cluster-scoped (migratefail).
  std::unique_ptr<LiveMigrator> migrator_;
  PlacementController placer_;
  std::vector<VmSetup> setups_;
  std::vector<ClusterVmLocation> locations_;
  std::vector<PendingVm> pending_;          // Deferred boots awaiting placement.
  std::vector<int64_t> cooldown_until_;     // Per host: next barrier allowed to evacuate.
  std::vector<HostHealth> health_;          // Per host failure-detector state.
  std::deque<RestartEntry> restart_queue_;  // FIFO of killed VMs awaiting re-placement.
  std::vector<RetryEntry> retry_queue_;     // Aborted routes awaiting re-plan.
  int64_t barrier_ = 0;  // Current barrier index (Loads reads quarantine from it).
  uint64_t placement_fallbacks_ = 0;
  uint64_t evac_no_destination_ = 0;
  uint64_t deferred_placements_ = 0;
  uint64_t hosts_failed_ = 0;
  uint64_t vms_killed_ = 0;
  uint64_t vms_restarted_ = 0;
  uint64_t vms_lost_ = 0;
  uint64_t transactions_lost_ = 0;
  uint64_t restart_latency_ns_total_ = 0;
  uint64_t migration_retries_ = 0;
  uint64_t migration_retries_exhausted_ = 0;
  // True when the cluster plan arms hostfail anywhere. Health state feeds
  // placement only then: fleets without hostfail (including every pinned
  // pre-existing baseline) see byte-identical control-plane decisions.
  bool ha_active_ = false;
  bool check_invariants_ = false;  // Mirrors config.check_invariants.
  bool ran_ = false;
};

}  // namespace demeter

#endif  // DEMETER_SRC_CLUSTER_CLUSTER_H_
