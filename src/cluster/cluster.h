// Multi-host fleet simulation: composes N Machines into one deterministic
// cluster with VM placement and pre-copy live migration.
//
// Hosts advance independently between epoch-synchronized barriers: each
// barrier StepUntil()s every host to the same virtual time, then runs the
// fleet-level control plane — migration rounds, due deferred boots, and
// shrink-window evacuations — in a fixed order. Everything the control
// plane reads is a deterministic function of host state at the barrier, and
// each host's seed derives from the cluster seed by host index
// (`seed + golden_ratio * h`), so the whole fleet is byte-reproducible:
// --jobs=1 and --jobs=8 runs of a cluster spec are identical.
//
// The single-host cluster is the degenerate case and is *exactly* a bare
// Machine: host 0 gets the cluster seed unchanged, every VM (deferred or
// not) is handed straight to Machine::AddVm, no barrier control plane runs
// (evacuation needs a second host), and SnapshotMetrics() returns host 0's
// registry verbatim. A regression test pins byte-identity.
//
// Multi-host snapshots re-namespace each host under "host<h>/..."
// ("host<h>/vm<i>/..." for the per-VM trees) and append a "cluster/..."
// roll-up of placement and migration counters.

#ifndef DEMETER_SRC_CLUSTER_CLUSTER_H_
#define DEMETER_SRC_CLUSTER_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/cluster/live_migrator.h"
#include "src/cluster/placement.h"
#include "src/harness/machine.h"

namespace demeter {

// Fleet topology + control-plane tuning. The default (num_hosts == 0) means
// "no cluster": the runner takes the classic single-Machine path and the
// spec content hash is bit-identical to builds that predate this subsystem.
struct ClusterSetup {
  int num_hosts = 0;  // 0 = bare Machine path; >= 1 builds a Cluster.
  Nanos epoch = 10 * kMillisecond;  // Barrier pitch.
  PlacementPolicy placement = PlacementPolicy::kFirstFit;
  // Fraction of each host's capacity the placement controller keeps
  // uncommitted — the slack that absorbs shrink carves and lazy-backing
  // growth. A host packed to the last frame is one fault from OOM.
  double placement_headroom = 0.1;
  MigrationConfig migration;
  // Per-host fault plans (host h uses host_faults[h % size]); empty = every
  // host runs the machine config's shared plan. This is how a sweep arms
  // staggered tiershrink windows on specific hosts.
  std::vector<FaultPlan> host_faults;

  bool IsDefault() const { return *this == ClusterSetup{}; }
  friend bool operator==(const ClusterSetup&, const ClusterSetup&) = default;
};

// Where a spec VM currently lives: host index + VM index on that host.
// Updated as migrations complete; final values locate the VM's results.
struct ClusterVmLocation {
  int host = -1;
  int index = -1;
};

class Cluster {
 public:
  // `config` is the per-host machine template; config.seed is the cluster
  // seed (host h runs at seed + 0x9e3779b97f4a7c15 * h).
  Cluster(const MachineConfig& config, const ClusterSetup& setup);

  // Registers a VM with the fleet; returns its cluster-wide index.
  // Placement happens at Run() (boot_at == 0) or at the first barrier past
  // its boot_at. Call before Run().
  int AddVm(const VmSetup& setup);

  // Places and runs the whole fleet to completion.
  void Run();

  int num_hosts() const { return static_cast<int>(hosts_.size()); }
  Machine& host(int h) { return *hosts_[static_cast<size_t>(h)]; }
  int num_vms() const { return static_cast<int>(setups_.size()); }

  // VM i's current (post-Run: final) location and its run result.
  const ClusterVmLocation& location(int i) const { return locations_[static_cast<size_t>(i)]; }
  const VmRunResult& result(int i) const;

  // Single host: host 0's registry verbatim. Multi-host: every host
  // re-namespaced under "host<h>/" plus the "cluster/" roll-up.
  MetricSnapshot SnapshotMetrics() const;

  // Trace events from every host, concatenated in host order.
  std::vector<TraceEvent> TakeTrace();

  const LiveMigrator& migrator() const { return *migrator_; }
  const LiveMigrator::Stats& migration_stats() const { return migrator_->stats(); }
  const PlacementController::Stats& placement_stats() const { return placer_.stats(); }
  uint64_t evacuations_without_destination() const { return evac_no_destination_; }

 private:
  struct PendingVm {
    int spec_index = -1;
    VmSetup setup;
  };

  // A not-yet-provisioned commitment against one host, split the way the
  // VM's pages will land: its FMEM hot-set share and the far remainder.
  struct Reservation {
    uint64_t fmem_pages = 0;
    uint64_t far_pages = 0;
  };

  // Live load summary for every host; `reserved`/`assigned` fold in VMs
  // placed earlier in the same pre-run batch (not yet provisioned).
  std::vector<HostLoad> Loads(const std::vector<Reservation>& reserved,
                              const std::vector<int>& assigned_vms) const;
  // Places a VM with `setup`'s footprint on the best host; falls back to
  // the roomiest host when no host is eligible (a VM must run somewhere).
  int PlaceVm(const VmSetup& setup, const std::vector<Reservation>& reserved,
              const std::vector<int>& assigned_vms);
  void PlaceDue(Nanos now);
  void MaybeEvacuate(Nanos now, int64_t barrier);

  ClusterSetup setup_;
  MetricRegistry registry_;  // "cluster/..." roll-up metrics.
  std::vector<std::unique_ptr<Machine>> hosts_;
  std::unique_ptr<FaultInjector> faults_;  // Cluster-scoped (migratefail).
  std::unique_ptr<LiveMigrator> migrator_;
  PlacementController placer_;
  std::vector<VmSetup> setups_;
  std::vector<ClusterVmLocation> locations_;
  std::vector<PendingVm> pending_;          // Deferred boots awaiting placement.
  std::vector<int64_t> cooldown_until_;     // Per host: next barrier allowed to evacuate.
  uint64_t placement_fallbacks_ = 0;
  uint64_t evac_no_destination_ = 0;
  uint64_t deferred_placements_ = 0;
  bool check_invariants_ = false;  // Mirrors config.check_invariants.
  bool ran_ = false;
};

}  // namespace demeter

#endif  // DEMETER_SRC_CLUSTER_CLUSTER_H_
