// Fleet-level VM placement: given a per-host load summary, pick the host a
// new (or migrating) VM should land on.
//
// Scoring folds three pressures the paper's cloud operator cares about:
// FMEM headroom (the scarce tier a tiered-memory VM actually wants), far-tier
// pressure (a host whose SMEM/swap is already loaded will demote the
// newcomer's pages immediately), and damage history (frames lost to hwpoison
// or currently carved out by a shrink window — a host that keeps losing
// capacity is a bad landlord). Hosts inside an active FMEM shrink window are
// never chosen: evacuations target them as *sources*, so handing them new
// tenants would fight the migrator.
//
// All decisions are pure functions of the load vector — no randomness, ties
// break toward the lowest host index — so placement is deterministic across
// --jobs values and platforms.

#ifndef DEMETER_SRC_CLUSTER_PLACEMENT_H_
#define DEMETER_SRC_CLUSTER_PLACEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace demeter {

enum class PlacementPolicy {
  kFirstFit,  // Lowest-index host with room (packs the fleet left).
  kBestFit,   // Eligible host with the tightest sufficient headroom.
  kSpread,    // Fewest resident VMs; headroom breaks ties.
};

const char* PlacementPolicyName(PlacementPolicy policy);
PlacementPolicy PlacementPolicyFromName(const std::string& name);

// What the controller knows about one host at decision time. The cluster
// fills this from *committed* machine state: live free counts minus the
// pages resident VMs are promised but have not lazily touched yet (plus
// reservations for VMs placed in the same batch but not yet provisioned,
// and the full commitment of any migration already routed at the host).
struct HostLoad {
  uint64_t fmem_free_pages = 0;
  uint64_t far_free_pages = 0;   // SMEM (+ swap) frames still free.
  uint64_t capacity_pages = 0;   // Total frames across every tier.
  uint64_t far_used_pages = 0;   // Far-tier pressure already resident.
  uint64_t poisoned_pages = 0;   // Frames permanently retired by hwpoison.
  uint64_t carved_pages = 0;     // Frames currently carved out by shrink.
  int resident_vms = 0;          // Active + same-batch-assigned VMs.
  bool shrinking = false;        // FMEM under an active shrink window.
  bool excluded = false;         // Caller veto (e.g. the migration source).
  bool down = false;             // Fail-stopped: fenced, never placeable.
  bool quarantined = false;      // Back up but on probation after a crash.
  uint64_t failures = 0;           // Health ledger: whole-host crashes.
  uint64_t migration_aborts = 0;   // Health ledger: aborted routes at host.
};

class PlacementController {
 public:
  // `headroom` is the fraction of each host's total capacity the controller
  // refuses to commit: the slack that absorbs shrink-window carves and the
  // growth slop of lazily-backed tenants. 0 disables the reserve.
  explicit PlacementController(PlacementPolicy policy, double headroom = 0.0)
      : policy_(policy), headroom_(headroom) {}

  // Picks a host able to take `pages_needed` more pages — of which
  // `fmem_pages_needed` is the VM's hot-set share that must still fit in
  // uncommitted FMEM — while keeping the headroom reserve free, or -1 when
  // no eligible host has room. Counts a placement or a reject either way.
  int PickHost(const std::vector<HostLoad>& loads, uint64_t pages_needed,
               uint64_t fmem_pages_needed = 0);

  // Effective headroom in pages: full-weight FMEM, half-weight far tier,
  // minus damage history and a far-pressure penalty. May go negative on a
  // battered host — such hosts lose every best-fit/spread tiebreak.
  static double Score(const HostLoad& load);

  // Last-resort host for a VM that must land somewhere even though no host
  // passes Eligible (boot-time placement cannot defer forever). Tiered
  // preference, roomiest (fmem + far free, lowest index on ties) inside
  // each tier:
  //   1. healthy hosts (not shrinking, not quarantined),
  //   2. actively-shrinking hosts (they still have real frames — the
  //      migrator will move the newcomer later if the squeeze holds),
  //   3. quarantined hosts (alive but on post-crash probation).
  // Down or excluded hosts are never returned: placing onto a fenced host
  // would violate the down-host fencing invariant. -1 when every host is
  // down/excluded.
  static int PickFallbackHost(const std::vector<HostLoad>& loads);

  struct Stats {
    uint64_t placements = 0;
    uint64_t rejects = 0;
  };

  PlacementPolicy policy() const { return policy_; }
  const Stats& stats() const { return stats_; }

 private:
  bool Eligible(const HostLoad& load, uint64_t pages_needed, uint64_t fmem_pages_needed) const;

  PlacementPolicy policy_;
  double headroom_;
  Stats stats_;
};

}  // namespace demeter

#endif  // DEMETER_SRC_CLUSTER_PLACEMENT_H_
