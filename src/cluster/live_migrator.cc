#include "src/cluster/live_migrator.h"

#include <utility>

#include "src/base/logging.h"
#include "src/mem/host_memory.h"
#include "src/mmu/page_table.h"

namespace demeter {

LiveMigrator::LiveMigrator(const MigrationConfig& config,
                           std::vector<std::unique_ptr<Machine>>& hosts, FaultInjector* faults)
    : config_(config), hosts_(hosts), faults_(faults) {
  dst_committed_.resize(hosts_.size());
}

std::vector<LiveMigrator::Completion> LiveMigrator::InflightRoutes() const {
  std::vector<Completion> routes;
  routes.reserve(inflight_.size());
  for (const Inflight& m : inflight_) {
    routes.push_back(Completion{m.src_host, m.src_vm, m.dst_host, -1});
  }
  return routes;
}

bool LiveMigrator::Migrating(int host, int vm) const {
  for (const Inflight& m : inflight_) {
    if (m.src_host == host && m.src_vm == vm) {
      return true;
    }
  }
  return false;
}

LiveMigrator::RoundResult LiveMigrator::CopyRound(Machine& src, int vm_idx, bool full, Nanos now) {
  Vm& vm = src.vm(vm_idx);
  HostMemory& mem = src.hypervisor().memory();
  std::vector<PageNum> dirty;
  RoundResult round;
  vm.ept().ForEachPresent(0, PageTable::kMaxPage,
                          [&](PageNum gpa, uint64_t frame, bool /*accessed*/, bool is_dirty) {
                            if (is_dirty) {
                              dirty.push_back(gpa);
                            }
                            if (full || is_dirty) {
                              ++round.pages;
                              round.ns += mem.tier(mem.TierOf(static_cast<FrameId>(frame)))
                                              .AccessCost(now, kPageSize, /*is_write=*/false) +
                                          config_.wire_ns_per_page;
                            }
                          });
  for (const PageNum gpa : dirty) {
    vm.ept().TestAndClearDirty(gpa);
  }
  // (Re)arming dirty logging clears D bits the guest may hold in its TLBs —
  // a full shootdown, exactly like a hardware write-protect pass.
  vm.FullFlushAll();
  round.ns += vm.FullFlushCost();
  vm.mgmt_account().Charge(TmmStage::kMigration, round.ns);
  return round;
}

void LiveMigrator::ReleaseCommitment(const Inflight& m) {
  Commitment& held = dst_committed_[static_cast<size_t>(m.dst_host)];
  DEMETER_CHECK_GE(held.fmem_pages, m.commitment.fmem_pages)
      << "commitment double-release (fmem) toward host " << m.dst_host;
  DEMETER_CHECK_GE(held.far_pages, m.commitment.far_pages)
      << "commitment double-release (far) toward host " << m.dst_host;
  held.fmem_pages -= m.commitment.fmem_pages;
  held.far_pages -= m.commitment.far_pages;
}

InvariantReport LiveMigrator::AuditCommitments() const {
  std::vector<InvariantChecker::CommitmentEntry> inflight;
  inflight.reserve(inflight_.size());
  for (const Inflight& m : inflight_) {
    inflight.push_back({m.dst_host, m.commitment.fmem_pages, m.commitment.far_pages});
  }
  std::vector<InvariantChecker::CommitmentEntry> ledger;
  ledger.reserve(dst_committed_.size());
  for (size_t h = 0; h < dst_committed_.size(); ++h) {
    ledger.push_back(
        {static_cast<int>(h), dst_committed_[h].fmem_pages, dst_committed_[h].far_pages});
  }
  InvariantReport report;
  InvariantChecker::CheckCommitmentConservation(inflight, ledger, &report);
  return report;
}

bool LiveMigrator::Begin(int src_host, int src_vm, int dst_host, const Commitment& commitment,
                         Nanos now) {
  DEMETER_CHECK(src_host != dst_host) << "migration must change hosts";
  Machine& src = *hosts_[static_cast<size_t>(src_host)];
  DEMETER_CHECK(src.VmActive(src_vm));
  DEMETER_CHECK(!Migrating(src_host, src_vm));
  Inflight m;
  m.src_host = src_host;
  m.src_vm = src_vm;
  m.dst_host = dst_host;
  m.commitment = commitment;
  // The abort fault is drawn once, at start, from the source host's private
  // stream — whether THIS migration fails is decided up front, the window
  // only decides when the failure surfaces.
  if (faults_ != nullptr && src_host < kMaxFaultHosts && faults_->ShouldFailMigration(src_host)) {
    m.abort_armed = true;
    m.abort_after = faults_->MigrationAbortAfter(src_host);
  }
  ++stats_.started;
  const RoundResult round = CopyRound(src, src_vm, /*full=*/true, now);
  ++stats_.precopy_rounds;
  stats_.pages_copied += round.pages;
  m.rounds = 1;
  m.copy_ns = round.ns;
  if (m.abort_armed && m.copy_ns >= static_cast<double>(m.abort_after)) {
    // Aborted during the initial full copy. Nothing on the source was
    // disturbed beyond cleared D bits, so there is nothing to roll back.
    ++stats_.aborted;
    aborted_routes_.push_back(Completion{m.src_host, m.src_vm, m.dst_host, -1});
    return false;
  }
  // The destination is charged only once the migration is actually in
  // flight — a round-0 abort never touched the ledger, so there is nothing
  // to release on that path.
  Commitment& held = dst_committed_[static_cast<size_t>(dst_host)];
  held.fmem_pages += m.commitment.fmem_pages;
  held.far_pages += m.commitment.far_pages;
  inflight_.push_back(m);
  return true;
}

std::vector<LiveMigrator::Completion> LiveMigrator::Advance(Nanos now) {
  std::vector<Completion> done;
  std::vector<Inflight> keep;
  keep.reserve(inflight_.size());
  for (Inflight& m : inflight_) {
    Machine& src = *hosts_[static_cast<size_t>(m.src_host)];
    if (!src.VmActive(m.src_vm)) {
      // The VM reached its target (or departed) before converging; the
      // migration evaporates — its resources were torn down by FinishVm.
      ++stats_.cancelled;
      ReleaseCommitment(m);
      continue;
    }
    const RoundResult round = CopyRound(src, m.src_vm, /*full=*/false, now);
    ++stats_.precopy_rounds;
    stats_.pages_copied += round.pages;
    ++m.rounds;
    m.copy_ns += round.ns;
    if (m.abort_armed && m.copy_ns >= static_cast<double>(m.abort_after)) {
      // Mid-copy failure: the source VM keeps running untouched (leak-free
      // by construction — extraction never started). The destination charge
      // is released here and only here — historically placement recomputed
      // commitments from the in-flight routes, which let an abort's charge
      // linger for the rest of the barrier epoch.
      ++stats_.aborted;
      ReleaseCommitment(m);
      aborted_routes_.push_back(Completion{m.src_host, m.src_vm, m.dst_host, -1});
      continue;
    }
    if (round.pages > config_.stop_copy_pages && m.rounds < config_.max_precopy_rounds) {
      keep.push_back(m);  // Still converging.
      continue;
    }
    // Stop-and-copy: the residual this round moved is the transfer the VM
    // pauses for; the destination rebuild cost is added by AdoptVm.
    Machine& dst = *hosts_[static_cast<size_t>(m.dst_host)];
    MigratedVm moved = src.ExtractVm(m.src_vm, now);
    const int dst_vm = dst.AdoptVm(std::move(moved), now, round.ns);
    ++stats_.completed;
    stats_.downtime_ns_total += static_cast<uint64_t>(round.ns);
    // The adopted VM's real allocations now carry the weight; the ledger
    // claim is spent.
    ReleaseCommitment(m);
    done.push_back(Completion{m.src_host, m.src_vm, m.dst_host, dst_vm});
  }
  inflight_ = std::move(keep);
  return done;
}

std::vector<LiveMigrator::Completion> LiveMigrator::FenceHost(int host) {
  std::vector<Completion> torn;
  std::vector<Inflight> keep;
  keep.reserve(inflight_.size());
  for (Inflight& m : inflight_) {
    if (m.src_host != host && m.dst_host != host) {
      keep.push_back(m);
      continue;
    }
    ++stats_.fenced;
    ReleaseCommitment(m);
    torn.push_back(Completion{m.src_host, m.src_vm, m.dst_host, -1});
  }
  inflight_ = std::move(keep);
  return torn;
}

std::vector<LiveMigrator::Completion> LiveMigrator::TakeAbortedRoutes() {
  std::vector<Completion> drained = std::move(aborted_routes_);
  aborted_routes_.clear();
  return drained;
}

void LiveMigrator::RegisterMetrics(MetricScope scope) const {
  scope.RegisterCounter("started", &stats_.started);
  scope.RegisterCounter("completed", &stats_.completed);
  scope.RegisterCounter("aborted", &stats_.aborted);
  scope.RegisterCounter("cancelled", &stats_.cancelled);
  scope.RegisterCounter("fenced", &stats_.fenced);
  scope.RegisterCounter("precopy_rounds", &stats_.precopy_rounds);
  scope.RegisterCounter("pages_copied", &stats_.pages_copied);
  scope.RegisterCounter("downtime_ns_total", &stats_.downtime_ns_total);
}

}  // namespace demeter
