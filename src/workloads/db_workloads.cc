#include "src/workloads/db_workloads.h"

#include "src/base/logging.h"

namespace demeter {

// ---- BtreeWorkload ----------------------------------------------------------

BtreeWorkload::BtreeWorkload(BtreeConfig config) : config_(config) {
  footprint_bytes_ = config.footprint_bytes;
}

void BtreeWorkload::Setup(GuestProcess& process, Rng& rng) {
  (void)rng;
  // Size the tree: leaves consume most of the footprint.
  leaf_count_ = config_.footprint_bytes / config_.node_bytes;
  // Level sizes from leaf upward: n, n/fanout, ..., 1.
  std::vector<uint64_t> sizes;
  uint64_t n = leaf_count_;
  while (n > 1) {
    sizes.push_back(n);
    n = (n + static_cast<uint64_t>(config_.fanout) - 1) / static_cast<uint64_t>(config_.fanout);
  }
  sizes.push_back(1);
  levels_ = static_cast<int>(sizes.size());
  // Allocate root-first so upper levels are contiguous and early in the heap.
  level_base_.resize(sizes.size());
  level_nodes_.resize(sizes.size());
  for (size_t l = 0; l < sizes.size(); ++l) {
    const uint64_t nodes = sizes[sizes.size() - 1 - l];  // Root first.
    level_base_[l] = process.HeapAlloc(nodes * config_.node_bytes);
    level_nodes_[l] = nodes;
  }
}

void BtreeWorkload::NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) {
  (void)worker;
  const size_t lookups = count / static_cast<size_t>(levels_);
  for (size_t i = 0; i < lookups; ++i) {
    const uint64_t key = rng.NextBelow(leaf_count_);
    // Descend: node index at level l = key / fanout^(levels-1-l).
    uint64_t divisor = 1;
    for (int l = levels_ - 1; l >= 1; --l) {
      divisor *= static_cast<uint64_t>(config_.fanout);
    }
    for (int l = 0; l < levels_; ++l) {
      uint64_t idx = key / divisor;
      if (idx >= level_nodes_[static_cast<size_t>(l)]) {
        idx = level_nodes_[static_cast<size_t>(l)] - 1;
      }
      ops->push_back(AccessOp{level_base_[static_cast<size_t>(l)] + idx * config_.node_bytes,
                              /*is_write=*/false});
      divisor = divisor > 1 ? divisor / static_cast<uint64_t>(config_.fanout) : 1;
    }
  }
}

// ---- SiloYcsb ----------------------------------------------------------------

SiloYcsb::SiloYcsb(SiloConfig config) : config_(config) {
  footprint_bytes_ = config.footprint_bytes;
}

void SiloYcsb::Setup(GuestProcess& process, Rng& rng) {
  (void)rng;
  // ~1/16 of the footprint is index, the rest records.
  index_bytes_ = PageCeil(config_.footprint_bytes / 16);
  const uint64_t record_bytes_total = config_.footprint_bytes - index_bytes_;
  index_base_ = process.HeapAlloc(index_bytes_);
  records_base_ = process.HeapAlloc(record_bytes_total);
  num_records_ = record_bytes_total / config_.record_bytes;
  DEMETER_CHECK_GT(num_records_, 0u);
}

void SiloYcsb::NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) {
  (void)worker;
  const size_t per_txn = static_cast<size_t>(OpsPerTransaction());
  const size_t txns = count / per_txn;
  for (size_t t = 0; t < txns; ++t) {
    ++txn_counter_;
    if (txn_counter_ % config_.drift_period_txns == 0) {
      // Hotspot drift: the popular keys move through the keyspace.
      drift_offset_ = (drift_offset_ + static_cast<uint64_t>(config_.drift_step_fraction *
                                                             static_cast<double>(num_records_))) %
                      num_records_;
    }
    // Index traversal (B-tree interior nodes: compact, hot).
    for (int i = 0; i < config_.index_reads_per_txn; ++i) {
      const uint64_t slot = rng.NextZipf(index_bytes_ / 64, 0.6) * 64;
      ops->push_back(AccessOp{index_base_ + slot, false});
    }
    // Record read-modify-writes with drifting zipfian popularity.
    for (int i = 0; i < config_.records_per_txn; ++i) {
      const uint64_t rank = rng.NextZipf(num_records_, config_.zipf_theta);
      const uint64_t key = (rank + drift_offset_) % num_records_;
      const uint64_t addr = records_base_ + key * config_.record_bytes;
      ops->push_back(AccessOp{addr, false});
      ops->push_back(AccessOp{addr, true});
    }
  }
}

}  // namespace demeter
