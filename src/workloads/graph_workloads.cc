#include "src/workloads/graph_workloads.h"

#include "src/base/logging.h"

namespace demeter {

// ---- Graph500Bfs --------------------------------------------------------------

Graph500Bfs::Graph500Bfs(GraphConfig config) : config_(config) {
  footprint_bytes_ = config.footprint_bytes;
}

void Graph500Bfs::Setup(GuestProcess& process, Rng& rng) {
  (void)rng;
  // Partition footprint between vertex state and the edge array.
  const double per_vertex = static_cast<double>(config_.vertex_bytes) +
                            config_.edges_per_vertex * static_cast<double>(config_.edge_bytes);
  num_vertices_ = static_cast<uint64_t>(static_cast<double>(config_.footprint_bytes) / per_vertex);
  DEMETER_CHECK_GT(num_vertices_, 0u);
  num_edges_ = static_cast<uint64_t>(config_.edges_per_vertex * static_cast<double>(num_vertices_));
  vertex_base_ = process.HeapAlloc(num_vertices_ * config_.vertex_bytes);
  edge_base_ = process.HeapAlloc(num_edges_ * config_.edge_bytes);
}

void Graph500Bfs::NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) {
  (void)worker;
  const size_t expansions = count / static_cast<size_t>(OpsPerTransaction());
  for (size_t e = 0; e < expansions; ++e) {
    // Pick a frontier vertex with power-law popularity (hubs dominate).
    const uint64_t v = rng.NextZipf(num_vertices_, config_.degree_theta);
    ops->push_back(AccessOp{vertex_base_ + v * config_.vertex_bytes, false});
    // Its adjacency run: edges are laid out by source vertex hash, so the
    // run starts at a scattered position but reads sequentially.
    uint64_t sm = v;  // SplitMix hash of v places the run.
    const uint64_t run_start = SplitMix64(sm) % (num_edges_ - 8);
    const int run_len = 6;
    for (int i = 0; i < run_len; ++i) {
      const uint64_t idx = (run_start + static_cast<uint64_t>(i)) % num_edges_;
      ops->push_back(AccessOp{edge_base_ + idx * config_.edge_bytes, false});
    }
    // Visit destinations: scattered writes into the vertex state.
    for (int i = 0; i < 3; ++i) {
      const uint64_t dst = rng.NextZipf(num_vertices_, config_.degree_theta);
      ops->push_back(AccessOp{vertex_base_ + dst * config_.vertex_bytes, true});
    }
  }
}

// ---- PageRankWorkload -----------------------------------------------------------

PageRankWorkload::PageRankWorkload(GraphConfig config) : config_(config) {
  footprint_bytes_ = config.footprint_bytes;
}

void PageRankWorkload::Setup(GuestProcess& process, Rng& rng) {
  (void)rng;
  const double per_vertex = static_cast<double>(config_.vertex_bytes) +
                            config_.edges_per_vertex * static_cast<double>(config_.edge_bytes);
  num_vertices_ = static_cast<uint64_t>(static_cast<double>(config_.footprint_bytes) / per_vertex);
  num_edges_ = static_cast<uint64_t>(config_.edges_per_vertex * static_cast<double>(num_vertices_));
  vertex_base_ = process.HeapAlloc(num_vertices_ * config_.vertex_bytes);
  edge_base_ = process.HeapAlloc(num_edges_ * config_.edge_bytes);
  cursor_.assign(64, 0);
}

void PageRankWorkload::NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) {
  uint64_t& pos = cursor_[static_cast<size_t>(worker) % cursor_.size()];
  const size_t steps = count / static_cast<size_t>(OpsPerTransaction());
  for (size_t s = 0; s < steps; ++s) {
    // Sequential edge-array sweep.
    ops->push_back(AccessOp{edge_base_ + pos * config_.edge_bytes, false});
    // Source rank: in-degree follows a power law, so rank reads are zipfian.
    const uint64_t src = rng.NextZipf(num_vertices_, config_.degree_theta);
    ops->push_back(AccessOp{vertex_base_ + src * config_.vertex_bytes, false});
    // Accumulate into destination: scattered write.
    const uint64_t dst = rng.NextBelow(num_vertices_);
    ops->push_back(AccessOp{vertex_base_ + dst * config_.vertex_bytes, true});
    pos = (pos + 1) % num_edges_;
  }
}

}  // namespace demeter
