#include "src/workloads/hpc_workloads.h"

#include "src/base/logging.h"

namespace demeter {

// ---- BwavesWorkload ----------------------------------------------------------

BwavesWorkload::BwavesWorkload(BwavesConfig config) : config_(config) {
  footprint_bytes_ = config.footprint_bytes;
}

void BwavesWorkload::Setup(GuestProcess& process, Rng& rng) {
  (void)rng;
  array_bytes_ = PageFloor(config_.footprint_bytes / static_cast<uint64_t>(config_.num_arrays));
  for (int a = 0; a < config_.num_arrays; ++a) {
    array_base_.push_back(process.HeapAlloc(array_bytes_));
  }
  cursor_.assign(64, 0);  // Up to 64 workers.
}

void BwavesWorkload::NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) {
  (void)rng;
  uint64_t& pos = cursor_[static_cast<size_t>(worker) % cursor_.size()];
  const size_t steps = count / static_cast<size_t>(OpsPerTransaction());
  // Workers sweep disjoint offsets of the same grids (domain decomposition).
  const uint64_t worker_shift =
      static_cast<uint64_t>(worker) * (array_bytes_ / 8) % array_bytes_;
  for (size_t s = 0; s < steps; ++s) {
    const uint64_t a = s % array_base_.size();
    const uint64_t off = (worker_shift + pos) % (array_bytes_ - 8);
    const uint64_t base = array_base_[a];
    ops->push_back(AccessOp{base + off, false});  // Centre.
    ops->push_back(AccessOp{base + (off + config_.plane_bytes) % (array_bytes_ - 8), false});
    ops->push_back(
        AccessOp{base + (off + array_bytes_ - config_.plane_bytes) % (array_bytes_ - 8), false});
    ops->push_back(AccessOp{base + off, true});  // Result write.
    pos = (pos + 64) % (array_bytes_ - 8);       // Streaming stride.
  }
}

// ---- XsbenchWorkload -----------------------------------------------------------

XsbenchWorkload::XsbenchWorkload(XsbenchConfig config) : config_(config) {
  footprint_bytes_ = config.footprint_bytes;
}

void XsbenchWorkload::Setup(GuestProcess& process, Rng& rng) {
  (void)rng;
  unionized_bytes_ = PageCeil(static_cast<uint64_t>(
      config_.unionized_fraction * static_cast<double>(config_.footprint_bytes)));
  nuclide_bytes_ = config_.footprint_bytes - unionized_bytes_;
  // Nuclide grids are allocated first (init touches them first), so the hot
  // unionized grid starts life in SMEM — TMM must find and promote it.
  nuclide_base_ = process.HeapAlloc(nuclide_bytes_);
  unionized_base_ = process.HeapAlloc(unionized_bytes_);
}

void XsbenchWorkload::NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) {
  (void)worker;
  const size_t lookups = count / static_cast<size_t>(OpsPerTransaction());
  for (size_t l = 0; l < lookups; ++l) {
    // Binary search of the unionized energy grid: touches cluster around a
    // random energy point with shrinking stride.
    uint64_t lo = 0;
    uint64_t hi = unionized_bytes_ - 8;
    for (int i = 0; i < config_.grid_searches_per_lookup; ++i) {
      const uint64_t mid = lo + (hi - lo) / 2;
      ops->push_back(AccessOp{unionized_base_ + mid, false});
      if (rng.NextBool(0.5)) {
        lo = mid;
      } else {
        hi = mid;
      }
      if (hi - lo < 64) {
        hi = lo + 64;
      }
    }
    // Gathers from the per-nuclide grids: uniform, cold.
    for (int i = 0; i < config_.nuclide_reads_per_lookup; ++i) {
      ops->push_back(AccessOp{nuclide_base_ + rng.NextBelow(nuclide_bytes_ - 8), false});
    }
  }
}

}  // namespace demeter
