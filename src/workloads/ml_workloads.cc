#include "src/workloads/ml_workloads.h"

#include "src/base/logging.h"

namespace demeter {

LiblinearWorkload::LiblinearWorkload(LiblinearConfig config) : config_(config) {
  footprint_bytes_ = config.footprint_bytes;
}

void LiblinearWorkload::Setup(GuestProcess& process, Rng& rng) {
  (void)rng;
  model_bytes_ = PageCeil(static_cast<uint64_t>(config_.model_fraction *
                                                static_cast<double>(config_.footprint_bytes)));
  data_bytes_ = config_.footprint_bytes - model_bytes_;
  // Dataset loads first (file parse), model allocates afterwards: the hot
  // weight vector begins in SMEM if FMEM filled during data load.
  data_base_ = process.HeapAlloc(data_bytes_);
  model_base_ = process.HeapAlloc(model_bytes_);
  cursor_.assign(64, 0);
}

void LiblinearWorkload::NextBatch(int worker, size_t count, Rng& rng,
                                  std::vector<AccessOp>* ops) {
  uint64_t& pos = cursor_[static_cast<size_t>(worker) % cursor_.size()];
  const size_t samples = count / static_cast<size_t>(OpsPerTransaction());
  for (size_t s = 0; s < samples; ++s) {
    for (int f = 0; f < config_.features_per_sample; ++f) {
      // Sequential read of the sample's feature entries.
      ops->push_back(AccessOp{data_base_ + pos, false});
      pos = (pos + 16) % (data_bytes_ - 8);
      // Weight read + gradient update: hot, zipf-skewed across features.
      const uint64_t w =
          rng.NextZipf(model_bytes_ / 8, config_.feature_zipf_theta) * 8;
      ops->push_back(AccessOp{model_base_ + w, false});
      ops->push_back(AccessOp{model_base_ + w, true});
    }
  }
}

}  // namespace demeter
