// Workload interface: access-pattern generators for the evaluation suite.
//
// A workload allocates its regions inside a guest process (Setup) and then
// produces batches of (gVA, read/write) operations per worker thread. The
// harness executes those operations through the VM, so every access goes
// through 2D translation, tiering, and PEBS exactly as the modelled
// application would.
//
// Workloads are classified as in §5.3:
//   uniform access        — btree, bwaves
//   static hotspot        — xsbench, liblinear
//   dynamic hotspot       — silo (YCSB)
//   skewed / power-law    — graph500, pagerank
//   synthetic skew        — gups (hotset variant; §5.2 micro-benchmarks)

#ifndef DEMETER_SRC_WORKLOADS_WORKLOAD_H_
#define DEMETER_SRC_WORKLOADS_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/guest/process.h"

namespace demeter {

struct AccessOp {
  uint64_t gva = 0;
  bool is_write = false;
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const char* name() const = 0;

  // Allocates the workload's memory inside `process`. Called once.
  virtual void Setup(GuestProcess& process, Rng& rng) = 0;

  // Appends the next `count` operations for `worker` to `ops`.
  virtual void NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) = 0;

  // Accesses composing one application-level transaction (for latency and
  // throughput reporting).
  virtual int OpsPerTransaction() const { return 1; }

  // CPU cache hit probability characteristic of this access pattern.
  virtual double CacheHitRate() const { return 0.2; }

  // Whether the harness should sequentially touch the whole footprint before
  // timing starts (applications initialize their data structures, which is
  // what makes first-touch placement follow init order, not access order).
  virtual bool NeedsInitPass() const { return true; }

  // Total bytes of tracked memory the workload allocated (valid post-Setup).
  uint64_t footprint_bytes() const { return footprint_bytes_; }

 protected:
  uint64_t footprint_bytes_ = 0;
};

// Factory: builds the named workload sized to `footprint_bytes`.
// Names: gups, gups-hot, btree, silo, bwaves, xsbench, graph500, pagerank, liblinear.
std::unique_ptr<Workload> MakeWorkload(const std::string& name, uint64_t footprint_bytes);

// The seven real-world workloads of §5.3, in the paper's figure order.
std::vector<std::string> RealWorldWorkloadNames();

}  // namespace demeter

#endif  // DEMETER_SRC_WORKLOADS_WORKLOAD_H_
