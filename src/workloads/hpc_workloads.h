// Scientific-computing workloads: a bwaves-like stencil sweep (uniform
// streaming) and an XSBench-like Monte Carlo cross-section lookup (static
// hotspot over the unionized energy grid).

#ifndef DEMETER_SRC_WORKLOADS_HPC_WORKLOADS_H_
#define DEMETER_SRC_WORKLOADS_HPC_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace demeter {

// bwaves (SPEC CPU 2017): block-tridiagonal solver sweeping large grids.
// Modelled as streaming sweeps over several arrays with plane-neighbour
// touches — relatively uniform, prefetch-friendly.
struct BwavesConfig {
  uint64_t footprint_bytes = 64 * kMiB;
  int num_arrays = 4;
  uint64_t plane_bytes = 256 * kKiB;  // Stencil neighbour stride.
};

class BwavesWorkload : public Workload {
 public:
  explicit BwavesWorkload(BwavesConfig config = BwavesConfig{});

  const char* name() const override { return "bwaves"; }
  void Setup(GuestProcess& process, Rng& rng) override;
  void NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) override;
  int OpsPerTransaction() const override { return 4; }  // Center+2 neighbours+write.
  double CacheHitRate() const override { return 0.35; }

 private:
  BwavesConfig config_;
  std::vector<uint64_t> array_base_;
  uint64_t array_bytes_ = 0;
  std::vector<uint64_t> cursor_;  // Per-worker sweep position.
};

// XSBench: macroscopic cross-section lookups. Each lookup binary-searches
// the unionized energy grid (small, intensely hot, static) then gathers
// from per-nuclide grids (large, uniformly cold).
struct XsbenchConfig {
  uint64_t footprint_bytes = 64 * kMiB;
  double unionized_fraction = 0.12;  // Hot grid share of footprint.
  int grid_searches_per_lookup = 12; // Binary-search touches in the hot grid.
  int nuclide_reads_per_lookup = 6;  // Gathers from the cold grids.
};

class XsbenchWorkload : public Workload {
 public:
  explicit XsbenchWorkload(XsbenchConfig config = XsbenchConfig{});

  const char* name() const override { return "xsbench"; }
  void Setup(GuestProcess& process, Rng& rng) override;
  void NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) override;
  int OpsPerTransaction() const override {
    return config_.grid_searches_per_lookup + config_.nuclide_reads_per_lookup;
  }
  double CacheHitRate() const override { return 0.25; }

  uint64_t unionized_base() const { return unionized_base_; }
  uint64_t unionized_bytes() const { return unionized_bytes_; }

 private:
  XsbenchConfig config_;
  uint64_t nuclide_base_ = 0;
  uint64_t nuclide_bytes_ = 0;
  uint64_t unionized_base_ = 0;
  uint64_t unionized_bytes_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_WORKLOADS_HPC_WORKLOADS_H_
