#include "src/base/logging.h"
#include "src/workloads/db_workloads.h"
#include "src/workloads/graph_workloads.h"
#include "src/workloads/gups.h"
#include "src/workloads/hpc_workloads.h"
#include "src/workloads/ml_workloads.h"
#include "src/workloads/workload.h"

namespace demeter {

std::unique_ptr<Workload> MakeWorkload(const std::string& name, uint64_t footprint_bytes) {
  if (name == "gups") {
    GupsConfig config;
    config.footprint_bytes = footprint_bytes;
    return std::make_unique<GupsHotset>(config);
  }
  if (name == "gups-hot") {
    // Variant whose hot set exceeds the default 1:5 FMEM share — used by
    // QoS experiments where a tenant genuinely needs more fast memory.
    GupsConfig config;
    config.footprint_bytes = footprint_bytes;
    config.hot_fraction = 0.38;
    config.hot_offset_fraction = 0.55;
    return std::make_unique<GupsHotset>(config);
  }
  if (name == "btree") {
    BtreeConfig config;
    config.footprint_bytes = footprint_bytes;
    return std::make_unique<BtreeWorkload>(config);
  }
  if (name == "silo") {
    SiloConfig config;
    config.footprint_bytes = footprint_bytes;
    return std::make_unique<SiloYcsb>(config);
  }
  if (name == "bwaves") {
    BwavesConfig config;
    config.footprint_bytes = footprint_bytes;
    return std::make_unique<BwavesWorkload>(config);
  }
  if (name == "xsbench") {
    XsbenchConfig config;
    config.footprint_bytes = footprint_bytes;
    return std::make_unique<XsbenchWorkload>(config);
  }
  if (name == "graph500") {
    GraphConfig config;
    config.footprint_bytes = footprint_bytes;
    return std::make_unique<Graph500Bfs>(config);
  }
  if (name == "pagerank") {
    GraphConfig config;
    config.footprint_bytes = footprint_bytes;
    return std::make_unique<PageRankWorkload>(config);
  }
  if (name == "liblinear") {
    LiblinearConfig config;
    config.footprint_bytes = footprint_bytes;
    return std::make_unique<LiblinearWorkload>(config);
  }
  DEMETER_CHECK(false) << "unknown workload: " << name;
  return nullptr;
}

std::vector<std::string> RealWorldWorkloadNames() {
  return {"btree", "silo", "bwaves", "xsbench", "graph500", "pagerank", "liblinear"};
}

}  // namespace demeter
