// Database workloads: btree (uniform with traversal hubs) and Silo running
// YCSB (OLTP with a dynamically shifting zipfian hotspot).

#ifndef DEMETER_SRC_WORKLOADS_DB_WORKLOADS_H_
#define DEMETER_SRC_WORKLOADS_DB_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace demeter {

// In-memory B+tree lookups with uniformly random keys. Upper levels are a
// small, implicitly hot region (traversal hubs); the leaf level dominates
// the footprint and is touched uniformly — the "uniform access pattern"
// class that challenges tiering (§5.3).
struct BtreeConfig {
  uint64_t footprint_bytes = 64 * kMiB;
  int fanout = 16;
  uint64_t node_bytes = 256;
};

class BtreeWorkload : public Workload {
 public:
  explicit BtreeWorkload(BtreeConfig config = BtreeConfig{});

  const char* name() const override { return "btree"; }
  void Setup(GuestProcess& process, Rng& rng) override;
  void NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) override;
  int OpsPerTransaction() const override { return levels_; }
  double CacheHitRate() const override { return 0.3; }

  int levels() const { return levels_; }

 private:
  BtreeConfig config_;
  int levels_ = 0;
  std::vector<uint64_t> level_base_;   // Address of each level's node array.
  std::vector<uint64_t> level_nodes_;  // Node count per level.
  uint64_t leaf_count_ = 0;
};

// Silo-style OLTP engine under a YCSB-like workload: zipfian record
// popularity whose hotspot center drifts over time (dynamic shifting
// hotspot, strong temporal locality). One transaction touches a few index
// nodes and performs read-modify-write on a small set of records.
struct SiloConfig {
  uint64_t footprint_bytes = 64 * kMiB;
  uint64_t record_bytes = 1024;
  double zipf_theta = 0.9;
  int records_per_txn = 4;
  int index_reads_per_txn = 3;
  // The hotspot center advances by this fraction of the keyspace per
  // `drift_period_txns` transactions.
  uint64_t drift_period_txns = 20000;
  double drift_step_fraction = 0.05;
};

class SiloYcsb : public Workload {
 public:
  explicit SiloYcsb(SiloConfig config = SiloConfig{});

  const char* name() const override { return "silo"; }
  void Setup(GuestProcess& process, Rng& rng) override;
  void NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) override;
  int OpsPerTransaction() const override {
    return config_.index_reads_per_txn + 2 * config_.records_per_txn;
  }
  double CacheHitRate() const override { return 0.3; }

 private:
  SiloConfig config_;
  uint64_t records_base_ = 0;
  uint64_t index_base_ = 0;
  uint64_t index_bytes_ = 0;
  uint64_t num_records_ = 0;
  uint64_t txn_counter_ = 0;
  uint64_t drift_offset_ = 0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_WORKLOADS_DB_WORKLOADS_H_
