// Graph workloads: graph500 BFS and PageRank over a power-law (Twitter-like)
// graph. Both exhibit skewed access with fine-grained interleaving of hot
// and cold data scattered across the footprint — the hardest class for
// range-based classification (§5.3).

#ifndef DEMETER_SRC_WORKLOADS_GRAPH_WORKLOADS_H_
#define DEMETER_SRC_WORKLOADS_GRAPH_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace demeter {

struct GraphConfig {
  uint64_t footprint_bytes = 64 * kMiB;
  uint64_t vertex_bytes = 16;   // Rank/visited/state per vertex.
  uint64_t edge_bytes = 8;
  double edges_per_vertex = 16;
  double degree_theta = 0.8;    // Power-law exponent for vertex popularity.
};

// graph500-style BFS: frontier expansion reads hub vertices' adjacency runs
// and writes the visited map at scattered destinations.
class Graph500Bfs : public Workload {
 public:
  explicit Graph500Bfs(GraphConfig config = GraphConfig{});

  const char* name() const override { return "graph500"; }
  void Setup(GuestProcess& process, Rng& rng) override;
  void NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) override;
  int OpsPerTransaction() const override { return 10; }
  double CacheHitRate() const override { return 0.15; }

 protected:
  GraphConfig config_;
  uint64_t vertex_base_ = 0;
  uint64_t edge_base_ = 0;
  uint64_t num_vertices_ = 0;
  uint64_t num_edges_ = 0;
};

// PageRank: sequential sweeps of the edge array combined with power-law
// random reads of source ranks and scattered accumulation writes.
class PageRankWorkload : public Workload {
 public:
  explicit PageRankWorkload(GraphConfig config = GraphConfig{});

  const char* name() const override { return "pagerank"; }
  void Setup(GuestProcess& process, Rng& rng) override;
  void NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) override;
  int OpsPerTransaction() const override { return 3; }  // Edge read, rank read, accum write.
  double CacheHitRate() const override { return 0.2; }

 private:
  GraphConfig config_;
  uint64_t vertex_base_ = 0;
  uint64_t edge_base_ = 0;
  uint64_t num_vertices_ = 0;
  uint64_t num_edges_ = 0;
  std::vector<uint64_t> cursor_;
};

}  // namespace demeter

#endif  // DEMETER_SRC_WORKLOADS_GRAPH_WORKLOADS_H_
