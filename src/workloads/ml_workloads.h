// Machine-learning workload: LibLinear-style linear-model training over a
// kdda-like sparse dataset — sequential sweeps of a large feature matrix
// with an intensely hot, static model-weight vector (the concentrated gVA
// hotspot visible in the paper's Figure 4 heat map).

#ifndef DEMETER_SRC_WORKLOADS_ML_WORKLOADS_H_
#define DEMETER_SRC_WORKLOADS_ML_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "src/workloads/workload.h"

namespace demeter {

struct LiblinearConfig {
  uint64_t footprint_bytes = 64 * kMiB;
  double model_fraction = 0.06;       // Weight vector share of footprint.
  int features_per_sample = 8;        // Non-zeros read per training sample.
  double feature_zipf_theta = 0.7;    // kdda feature popularity skew.
};

class LiblinearWorkload : public Workload {
 public:
  explicit LiblinearWorkload(LiblinearConfig config = LiblinearConfig{});

  const char* name() const override { return "liblinear"; }
  void Setup(GuestProcess& process, Rng& rng) override;
  void NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) override;
  int OpsPerTransaction() const override { return 3 * config_.features_per_sample; }
  double CacheHitRate() const override { return 0.3; }

  uint64_t model_base() const { return model_base_; }
  uint64_t model_bytes() const { return model_bytes_; }

 private:
  LiblinearConfig config_;
  uint64_t data_base_ = 0;
  uint64_t data_bytes_ = 0;
  uint64_t model_base_ = 0;
  uint64_t model_bytes_ = 0;
  std::vector<uint64_t> cursor_;
};

}  // namespace demeter

#endif  // DEMETER_SRC_WORKLOADS_ML_WORKLOADS_H_
