#include "src/workloads/gups.h"

#include "src/base/logging.h"

namespace demeter {

GupsHotset::GupsHotset(GupsConfig config) : config_(config) {
  footprint_bytes_ = config.footprint_bytes;
}

void GupsHotset::Setup(GuestProcess& process, Rng& rng) {
  (void)rng;
  base_ = process.HeapAlloc(config_.footprint_bytes);
  hot_bytes_ = PageCeil(
      static_cast<uint64_t>(config_.hot_fraction * static_cast<double>(config_.footprint_bytes)));
  hot_base_ = base_ + PageFloor(static_cast<uint64_t>(config_.hot_offset_fraction *
                                                      static_cast<double>(config_.footprint_bytes)));
  DEMETER_CHECK_LE(hot_base_ + hot_bytes_, base_ + config_.footprint_bytes);
  // P(hot) = w*h / (w*h + (1-h)).
  const double wh = config_.hot_access_weight * config_.hot_fraction;
  hot_probability_ = wh / (wh + (1.0 - config_.hot_fraction));
}

void GupsHotset::NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) {
  (void)worker;
  ops->reserve(ops->size() + count);
  for (size_t i = 0; i + 1 < count; i += 2) {
    uint64_t addr;
    if (rng.NextBool(hot_probability_)) {
      addr = hot_base_ + rng.NextBelow(hot_bytes_ - 8);
    } else {
      addr = base_ + rng.NextBelow(config_.footprint_bytes - 8);
    }
    // Read-modify-write: one load, one store at the same address.
    ops->push_back(AccessOp{addr, false});
    ops->push_back(AccessOp{addr, true});
  }
}

}  // namespace demeter
