// GUPS, hotset variant (§5.2): random read-modify-write transactions over a
// large table, with a hot region receiving 10x the access frequency of the
// cold remainder.

#ifndef DEMETER_SRC_WORKLOADS_GUPS_H_
#define DEMETER_SRC_WORKLOADS_GUPS_H_

#include "src/workloads/workload.h"

namespace demeter {

struct GupsConfig {
  uint64_t footprint_bytes = 64 * kMiB;
  double hot_fraction = 0.1;      // Size of the hot region.
  double hot_access_weight = 10;  // Hot region access multiplier.
  // Hot region placement within the table (fraction of footprint). Placed
  // away from the start so first-touch init lands it in SMEM.
  double hot_offset_fraction = 0.6;
};

class GupsHotset : public Workload {
 public:
  explicit GupsHotset(GupsConfig config = GupsConfig{});

  const char* name() const override { return "gups"; }
  void Setup(GuestProcess& process, Rng& rng) override;
  void NextBatch(int worker, size_t count, Rng& rng, std::vector<AccessOp>* ops) override;
  int OpsPerTransaction() const override { return 2; }  // Read + write.
  double CacheHitRate() const override { return 0.05; }

  uint64_t hot_base() const { return hot_base_; }
  uint64_t hot_bytes() const { return hot_bytes_; }

 private:
  GupsConfig config_;
  uint64_t base_ = 0;
  uint64_t hot_base_ = 0;
  uint64_t hot_bytes_ = 0;
  double hot_probability_ = 0.0;
};

}  // namespace demeter

#endif  // DEMETER_SRC_WORKLOADS_GUPS_H_
