// Experiment harness: builds a host with N virtual machines, provisions
// their tiered memory (static / VirtIO balloon / Demeter balloon / hotplug),
// attaches a TMM policy per VM, and drives the workloads to a transaction
// target in lock-stepped vCPU quanta over shared virtual time.
//
// All bench binaries (one per paper table/figure) are thin wrappers around
// this class.

#ifndef DEMETER_SRC_HARNESS_MACHINE_H_
#define DEMETER_SRC_HARNESS_MACHINE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/balloon/balloon.h"
#include "src/base/histogram.h"
#include "src/core/api.h"
#include "src/fault/fault.h"
#include "src/fault/invariant_checker.h"
#include "src/hyper/overcommit.h"
#include "src/hyper/vm.h"
#include "src/hyper/vm_image.h"
#include "src/sim/sim_clock.h"
#include "src/swap/swap_device.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/tracer.h"
#include "src/workloads/workload.h"

namespace demeter {

enum class PolicyKind {
  kStatic,
  kDemeter,
  kTpp,
  kHTpp,
  kMemtis,
  kNomad,
  kDamon,
};

const char* PolicyKindName(PolicyKind kind);
PolicyKind PolicyKindFromName(const std::string& name);

enum class ProvisionMode {
  kStatic,          // Nodes boot at the target sizes.
  kVirtioBalloon,   // Boot at 100%+100%; classic balloon trims (tier-blind).
  kDemeterBalloon,  // Boot at 100%+100%; double balloon trims per node.
  kHotplug,         // Boot at 100%+100%; block-granular unplug.
};

const char* ProvisionModeName(ProvisionMode mode);

struct MachineConfig {
  std::vector<TierSpec> tiers;
  Nanos quantum = 1 * kMillisecond;
  size_t batch_ops = 512;  // Ops fetched from the workload generator at a time.
  uint64_t seed = 42;
  // Record trace events (TLB flushes, PMI drains, migration batches,
  // balloon completions, QoS rounds). Pure observability: MUST NOT affect
  // simulation results, and is therefore excluded from the runner's
  // spec content hash.
  bool capture_trace = false;
  // Fault schedule (parsed from --faults). Empty = no injector is created
  // and every fault hook stays inert; non-empty plans fold into the
  // runner's spec content hash.
  FaultPlan faults;
  // Audit cross-layer invariants after provisioning and after every main-
  // loop event drain, aborting on violation. Read-only observability like
  // capture_trace: excluded from the spec content hash.
  bool check_invariants = false;
  // Far swap tier device model; consulted only when `tiers` has more than
  // kSwapTier entries (three-tier hosts). Two-tier machines never create
  // the device, so these knobs are inert there. seed 0 = derive from the
  // machine seed.
  SwapDeviceConfig swap;
  // FMEM overcommit arbitration (double-balloon spill scheduler). Off by
  // default; benches that oversubscribe FMEM turn it on. Enabled configs
  // fold into the runner's spec content hash.
  OvercommitConfig overcommit;
  // Hand whole workload batches to Vm::ExecuteBatch instead of one
  // ExecuteAccess per op. A pure execution-strategy switch: both paths
  // produce byte-identical simulation output (the batched-vs-scalar
  // property test pins this), so — like capture_trace — it is excluded
  // from the runner's spec content hash. The scalar path is kept for that
  // test and for bisecting any future divergence.
  bool batched_execution = true;
  // Number of shards per-VM state is partitioned into (clamped to
  // [1, kMaxShards]). Ownership is block-contiguous by vm id, so advancing
  // the shards in shard-major order replays the exact vm-id order of the
  // unsharded loop: sharding is an indexing/cost strategy, never a
  // reordering, and results are byte-identical for every value. Like
  // batched_execution it is excluded from the runner's spec content hash.
  int shards = 1;
};

// Hard cap on a VM's throughput-timeline length. A vCPU parked far past its
// last bucket (a long stall/crash window, or an extreme timeline_bucket
// choice) used to grow `timeline` by resize(bucket + 1) without bound;
// transactions landing beyond the cap all accumulate in the final bucket.
inline constexpr size_t kMaxTimelineBuckets = size_t{1} << 20;

struct VmSetup {
  VmConfig vm;
  std::string workload = "gups";
  uint64_t footprint_bytes = 48 * kMiB;
  uint64_t target_transactions = 500000;
  PolicyKind policy = PolicyKind::kStatic;
  ProvisionMode provision = ProvisionMode::kStatic;
  // Scan/classify period for the baseline policies (TPP/H-TPP/Memtis/Nomad).
  // Scaled-down simulations shrink this together with everything else.
  Nanos policy_period = 100 * kMillisecond;
  // Overrides applied to the Demeter policy when used.
  DemeterConfig demeter;
  // Virtual-time bucket for the throughput timeline.
  Nanos timeline_bucket = 100 * kMillisecond;
  // ---- lifecycle churn ----------------------------------------------------
  // 0 = boot with the machine (the default). Non-zero: the VM is created up
  // front but boots mid-run, once global virtual time reaches `boot_at` —
  // provisioning, workload setup, and policy attach all happen then.
  Nanos boot_at = 0;
  // Tear the VM down (full resource reclaim, audited) as soon as it reaches
  // its transaction target, instead of idling until the run ends.
  bool depart_on_finish = false;
};

struct VmRunResult {
  std::string workload;
  std::string policy;
  uint64_t transactions = 0;
  double elapsed_s = 0.0;  // Virtual seconds from run start to target.
  TlbStats tlb;
  VmStats vm_stats;
  CpuAccount mgmt;
  Histogram txn_latency_ns;
  // transactions completed per timeline bucket (throughput series).
  std::vector<uint64_t> timeline;
  Nanos timeline_bucket = 0;
  double fmem_access_fraction = 0.0;
  // Registry snapshot scoped to this VM ("vm<i>/" prefix stripped), taken
  // when the VM reaches its transaction target.
  MetricSnapshot metrics;

  double ThroughputTps() const { return elapsed_s > 0 ? transactions / elapsed_s : 0.0; }
  // Management cores consumed over the run (Figure 2's metric).
  double MgmtCores() const {
    return elapsed_s > 0 ? ToSeconds(mgmt.Total()) / elapsed_s : 0.0;
  }
};

// Everything a live migration carries between Machines: the resolved setup,
// the workload generator (its internal cursor keeps streaming where it left
// off), the captured memory image, accumulated stats/accounts, per-vCPU
// progress (clocks, batch cursors, partial-transaction latency), and the
// partial result series built so far. Produced by Machine::ExtractVm on the
// source; consumed exactly once by Machine::AdoptVm on the destination.
struct MigratedVm {
  VmSetup setup;
  std::unique_ptr<Workload> workload;
  VmMemoryImage image;
  VmStats stats;
  CpuAccount mgmt;
  TlbStats tlb;  // Whole-life aggregate (includes earlier migrations).
  std::vector<double> vcpu_clock_ns;
  std::vector<Nanos> next_context_switch;
  std::vector<std::vector<AccessOp>> batches;
  std::vector<size_t> batch_pos;
  std::vector<int> ops_in_txn;
  std::vector<SimClock> txn_latency_ns;
  uint64_t transactions = 0;
  Nanos start_time = 0;
  Histogram txn_latency_hist;
  std::vector<uint64_t> timeline;
};

class Machine {
 public:
  // One event-queue lane per shard plus the host lane must fit in the
  // queue's 64-lane fired-set word.
  static constexpr int kMaxShards = 63;

  explicit Machine(MachineConfig config);
  ~Machine();

  // Adds a VM; returns its index. Call before Run().
  int AddVm(const VmSetup& setup);

  // Tears down a running (or finished) VM mid-run at virtual time `now`:
  // stops its policy, marks the Vm departed, reclaims every resource it
  // holds (GPT mappings, guest pages, EPT backings, TLB entries) through
  // Hypervisor::ReclaimVm, and audits invariants. The Vm object itself
  // stays alive — late events (balloon completions, policy timers) must
  // land on valid memory — but holds nothing.
  void RemoveVm(int i, Nanos now);

  // Fail-stop teardown of a running VM at `now` (its host died): every
  // in-progress transaction and all accumulated progress is lost, counted
  // in `vm<i>/lifecycle/killed` / `transactions_lost`, then the VM is torn
  // down like RemoveVm. Returns the transactions discarded — the cluster's
  // restart ledger charges them against the fleet.
  uint64_t KillVm(int i, Nanos now);

  // Replaces VM i's policy with a caller-provided instance (e.g. a custom
  // TmmPolicy subclass, or a built-in with bespoke configuration). Call
  // between AddVm and Run; the machine attaches it at run start.
  void SetCustomPolicy(int i, std::unique_ptr<TmmPolicy> policy);

  // Provisions, initializes, attaches policies, and runs every VM to its
  // transaction target. Exactly StartRun() + StepUntil(kNoHorizon) +
  // FinishRun() — the split exists so a Cluster can interleave hosts.
  void Run();

  // ---- cluster stepping ---------------------------------------------------
  // Phases 1-4 of Run(): provision, workload setup + init pass, clock
  // alignment, policy attach, metric registration. Marks the machine as
  // running; AddVm is no longer legal afterwards (use AdmitVm).
  void StartRun();
  // Runs the main loop until no VM is active (returns false — the machine
  // is done unless a VM is admitted later) or until every active VM's clock
  // has reached `horizon` (returns true). The loop body is byte-identical
  // to Run()'s: with horizon == kNoHorizon this IS Run()'s phase 5.
  bool StepUntil(Nanos horizon);
  // The end-of-run audit. Call once, after the final StepUntil.
  void FinishRun();
  static constexpr Nanos kNoHorizon = ~static_cast<Nanos>(0);

  // Minimum vCPU clock over booted, unfinished VMs (0 when none). O(shards):
  // reads the per-shard cached minima, which the main loop keeps exact at
  // every host-interaction point.
  Nanos MinActiveClock() const;
  // True while VM i is booted and has not finished/departed.
  bool VmActive(int i) const {
    const VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
    return rt.booted && !rt.finished;
  }
  // O(1): maintained on every boot/finish/depart/extract transition.
  int NumActiveVms() const { return active_count_; }
  const VmSetup& vm_setup(int i) const { return setups_[static_cast<size_t>(i)]; }

  // ---- live migration -----------------------------------------------------
  // Adds a VM to a machine that is already running and boots it at `at`
  // (clamped forward to the event horizon like any mid-run boot). Returns
  // the new VM's index. `restarted` marks the admission as a post-failure
  // reincarnation in `vm<i>/lifecycle/restarts`.
  int AdmitVm(const VmSetup& setup, Nanos at, bool restarted = false);
  // Stop-and-copy extraction of a running VM at virtual time `now`: captures
  // its memory image and execution progress, then drains every resource it
  // held on this host (ReclaimVm — the departed-VM emptiness audit applies
  // from here on). The returned state must be handed to another machine's
  // AdoptVm exactly once.
  MigratedVm ExtractVm(int i, Nanos now);
  // Re-materializes a migrated VM on this (running) machine, charging
  // `extra_downtime_ns` (the stop-and-copy transfer) plus the restore cost
  // as downtime on every vCPU clock. The VM resumes with its carried
  // progress under a fresh policy instance (provision becomes kStatic: the
  // source host's balloon state does not travel). Returns the new index.
  int AdoptVm(MigratedVm&& vm, Nanos now, double extra_downtime_ns);

  const VmRunResult& result(int i) const { return results_[static_cast<size_t>(i)]; }
  int num_vms() const { return static_cast<int>(setups_.size()); }

  Hypervisor& hypervisor() { return *hyper_; }
  EventQueue& events() { return events_; }
  Vm& vm(int i) { return hyper_->vm(i); }
  TmmPolicy* policy(int i) { return policies_[static_cast<size_t>(i)].get(); }
  Workload* workload(int i) { return workloads_[static_cast<size_t>(i)].get(); }
  DemeterBalloon* demeter_balloon(int i) { return demeter_balloons_[static_cast<size_t>(i)].get(); }
  // The overcommit scheduler (null unless config.overcommit.enabled).
  OvercommitScheduler* overcommit() { return overcommit_.get(); }

  // Aggregate results.
  double TotalMgmtCores() const;
  double MeanElapsedSeconds() const;

  // The host-side registry ("host/..." trees). Per-VM metrics live in the
  // registry of the shard that owns the VM — SnapshotMetrics() merges them.
  MetricRegistry& metrics_registry() { return registry_; }
  // Full snapshot ("host/..." + every "vm<i>/..."), merged across the host
  // registry and every shard registry into one name-sorted snapshot —
  // byte-identical to the flat single-registry layout.
  MetricSnapshot SnapshotMetrics() const;

  // The machine's tracer (enabled iff config.capture_trace). Events use
  // VM ids as pids. TakeTrace moves the recorded events out (e.g. into a
  // NamedTrace for ChromeTraceJson).
  Tracer& tracer() { return tracer_; }
  std::vector<TraceEvent> TakeTrace() { return tracer_.TakeEvents(); }

  // The machine's fault injector (null when config.faults is empty).
  FaultInjector* fault_injector() { return fault_injector_.get(); }

  // Runs the cross-layer invariant audit now and returns the report
  // (exposed for tests; Run() calls it at audit points when
  // config.check_invariants is set).
  InvariantReport CheckInvariants();

 private:
  // Per-VM lifecycle accounting, registered as `vm<i>/lifecycle/*`.
  struct LifecycleStats {
    uint64_t boots = 0;
    uint64_t departures = 0;
    uint64_t boot_ns = 0;    // Virtual time the VM booted.
    uint64_t depart_ns = 0;  // Virtual time the VM departed.
    uint64_t reclaimed_gpt_pages = 0;
    uint64_t reclaimed_gpa_pages = 0;
    uint64_t reclaimed_ept_pages = 0;
    uint64_t migrated_in = 0;   // VM arrived here via live migration.
    uint64_t migrated_out = 0;  // VM left this host via live migration.
    uint64_t killed = 0;        // VM died with its host (fail-stop).
    uint64_t restarts = 0;      // VM is a post-host-failure reincarnation.
    uint64_t transactions_lost = 0;  // Progress discarded by kills.
  };

  struct VmRuntime {
    GuestProcess* process = nullptr;
    std::vector<std::vector<AccessOp>> batches;  // Per vCPU.
    std::vector<size_t> batch_pos;
    std::vector<int> ops_in_txn;  // Per vCPU: ops so far in current txn.
    // Per vCPU: accumulated latency of the current transaction. Compensated
    // like the vCPU clock — at long virtual horizons a plain double sum
    // drops sub-ulp op costs, skewing recorded latencies.
    std::vector<SimClock> txn_latency_ns;
    std::vector<BatchStep> steps;  // ExecuteBatch scratch (batched path).
    uint64_t transactions = 0;
    Nanos start_time = 0;
    bool booted = false;
    bool finished = false;
    LifecycleStats lifecycle;
    // TLB stats accumulated on previous hosts (migrated VMs only); FinishVm
    // merges these so result.tlb spans the VM's whole life.
    TlbStats migrated_tlb;
  };

  // A shard owns a block-contiguous range of vm ids: their membership lists,
  // the cached minimum clock over its active VMs, and the registry their
  // "vm<i>/..." metrics live in (no contention on the host registry as VM
  // counts grow; per-VM snapshots scan only the owning shard). Shards
  // advance independently between host-interaction points — balloon ops,
  // TMM migration batches, PMI drains, fault windows, overcommit ticks —
  // which all cross shards through the host event lane, where the merge is
  // (time, schedule-order) ordered and therefore deterministic.
  struct Shard {
    std::vector<int> active;        // Booted, unfinished; sorted by vm id.
    std::vector<int> pending_boot;  // Deferred boot_at VMs; sorted by vm id.
    Nanos min_clock = ~static_cast<Nanos>(0);  // Over `active`; ~0 if empty.
    MetricRegistry registry;
  };

  // Lanes the event queue needs: one per shard plus the shared host lane
  // (lane 0); single-shard machines keep the classic one-lane queue.
  static int EventLanesFor(const MachineConfig& config);
  int ShardOf(int i) const {
    return std::min(i / shard_block_, num_shards_ - 1);
  }
  MetricRegistry& VmRegistry(int i) {
    return shards_[static_cast<size_t>(ShardOf(i))].registry;
  }
  // Drains events to `until`, then refreshes the cached min clocks of
  // exactly the shards whose lanes fired (a host-lane fire conservatively
  // refreshes all of them — host events may touch any VM).
  void DrainEvents(Nanos until);
  // Recomputes a shard's cached min clock from its active VMs' vCPUs.
  void RefreshShard(int s);
  Nanos VmMinClock(int i) const;
  // Membership transitions; both keep active_count_ and the owning shard's
  // cached min clock exact. DeactivateVm is idempotent.
  void ActivateVm(int i);
  void DeactivateVm(int i);

  void ProvisionVm(int i, Nanos now);
  void InitPass(int i);
  void MaybeAuditInvariants(const char* where);
  void RunVmQuantum(int i);
  // Legacy one-op-at-a-time quantum body (config.batched_execution=false).
  void RunVmQuantumScalar(int i);
  // Per-op transaction accounting shared verbatim by both quantum bodies:
  // latency accumulation, txn-latency histogram, timeline bucketing (capped
  // at kMaxTimelineBuckets), and the transaction-target FinishVm trigger.
  // `clock_after` is the vCPU's integer clock right after the op landed.
  void AccountOp(int i, int v, int ops_per_txn, double op_ns, Nanos clock_after);
  void FinishVm(int i, Nanos now);
  // Mid-run boot of a deferred VM at virtual time `at`: provision, workload
  // setup + init pass, policy attach, late policy-metric registration.
  void BootVm(int i, Nanos at);
  // AddVm minus the not-yet-running check, shared with AdmitVm/AdoptVm.
  int AddVmInternal(const VmSetup& setup);
  // One-time registration of every subsystem's metrics (host, VMs,
  // policies, balloons) — called from Run() once policies are attached.
  void RegisterAllMetrics();
  // VM i's share of RegisterAllMetrics (mid-run admissions register late).
  void RegisterVmMetricsFor(int i);

  MachineConfig config_;
  MetricRegistry registry_;
  Tracer tracer_;
  std::unique_ptr<FaultInjector> fault_injector_;
  std::unique_ptr<HostMemory> memory_;
  EventQueue events_;
  std::unique_ptr<Hypervisor> hyper_;
  std::unique_ptr<OvercommitScheduler> overcommit_;
  std::vector<VmSetup> setups_;
  std::vector<std::unique_ptr<Workload>> workloads_;
  std::vector<std::unique_ptr<TmmPolicy>> policies_;
  std::vector<std::unique_ptr<TmmPolicy>> custom_policies_;
  std::vector<std::unique_ptr<DemeterBalloon>> demeter_balloons_;
  std::vector<std::unique_ptr<VirtioBalloon>> virtio_balloons_;
  std::vector<std::unique_ptr<HotplugProvisioner>> hotplugs_;
  // Deque: lifecycle counters are registered by address, and mid-run
  // admissions (AdmitVm/AdoptVm) grow the container after registration.
  std::deque<VmRuntime> runtimes_;
  std::vector<VmRunResult> results_;
  // Sized and populated by StartRun (vm-id blocks need the final VM count);
  // VMs admitted later clamp into the last shard.
  std::vector<Shard> shards_;
  int num_shards_ = 1;
  int shard_block_ = 1;  // Ids per shard in the contiguous ownership map.
  int active_count_ = 0;
  std::vector<int> sweep_;  // Scratch: membership list copy for iteration.
  Rng rng_;
  bool ran_ = false;
  // Latest event-drain horizon; mid-run boots never schedule behind it.
  Nanos event_horizon_ = 0;
};

// Builds a policy instance of the given kind. Demeter uses `demeter_config`;
// the baselines run their scans/classification every `policy_period`.
std::unique_ptr<TmmPolicy> MakePolicy(PolicyKind kind, const DemeterConfig& demeter_config,
                                      Nanos policy_period);

}  // namespace demeter

#endif  // DEMETER_SRC_HARNESS_MACHINE_H_
