// Plain-text table printer for bench output (paper tables/figures as rows).

#ifndef DEMETER_SRC_HARNESS_TABLE_H_
#define DEMETER_SRC_HARNESS_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace demeter {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Prints to stdout with column alignment and a header rule.
  void Print() const;
  // The same rendering as Print(), returned as a string (for result sinks
  // that write tables to files).
  std::string ToString() const;

  static std::string Fmt(double value, int precision = 2);
  static std::string Fmt(uint64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints a "figure" as a labelled series: one line per point.
void PrintSeries(const std::string& title, const std::vector<std::string>& labels,
                 const std::vector<double>& values, const std::string& unit);

}  // namespace demeter

#endif  // DEMETER_SRC_HARNESS_TABLE_H_
