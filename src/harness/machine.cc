#include "src/harness/machine.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/tmm/damon.h"
#include "src/tmm/htpp.h"
#include "src/tmm/memtis.h"
#include "src/tmm/nomad.h"
#include "src/tmm/static_policy.h"
#include "src/tmm/tpp.h"

namespace demeter {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kStatic:
      return "static";
    case PolicyKind::kDemeter:
      return "demeter";
    case PolicyKind::kTpp:
      return "tpp";
    case PolicyKind::kHTpp:
      return "tpp-h";
    case PolicyKind::kMemtis:
      return "memtis";
    case PolicyKind::kNomad:
      return "nomad";
    case PolicyKind::kDamon:
      return "damon";
  }
  return "?";
}

PolicyKind PolicyKindFromName(const std::string& name) {
  if (name == "static") {
    return PolicyKind::kStatic;
  }
  if (name == "demeter") {
    return PolicyKind::kDemeter;
  }
  if (name == "tpp") {
    return PolicyKind::kTpp;
  }
  if (name == "tpp-h" || name == "htpp") {
    return PolicyKind::kHTpp;
  }
  if (name == "memtis") {
    return PolicyKind::kMemtis;
  }
  if (name == "nomad") {
    return PolicyKind::kNomad;
  }
  if (name == "damon") {
    return PolicyKind::kDamon;
  }
  DEMETER_CHECK(false) << "unknown policy: " << name;
  return PolicyKind::kStatic;
}

const char* ProvisionModeName(ProvisionMode mode) {
  switch (mode) {
    case ProvisionMode::kStatic:
      return "static";
    case ProvisionMode::kVirtioBalloon:
      return "virtio-balloon";
    case ProvisionMode::kDemeterBalloon:
      return "demeter-balloon";
    case ProvisionMode::kHotplug:
      return "hotplug";
  }
  return "?";
}

std::unique_ptr<TmmPolicy> MakePolicy(PolicyKind kind, const DemeterConfig& demeter_config,
                                      Nanos policy_period) {
  switch (kind) {
    case PolicyKind::kStatic:
      return std::make_unique<StaticPolicy>();
    case PolicyKind::kDemeter:
      return std::make_unique<DemeterPolicy>(demeter_config);
    case PolicyKind::kTpp: {
      TppConfig config;
      config.scan_period = policy_period;
      return std::make_unique<TppPolicy>(config);
    }
    case PolicyKind::kHTpp: {
      HTppConfig config;
      config.scan_period = policy_period;
      return std::make_unique<HTppPolicy>(config);
    }
    case PolicyKind::kMemtis: {
      MemtisConfig config;
      config.classify_period = 2 * policy_period;
      config.poll_period = std::max<Nanos>(policy_period / 15, kMillisecond);
      // Scaled sampling: keep the histogram usefully populated at this
      // simulation's access rates (paper-scale defaults starve it).
      config.sample_period = 127;
      config.hot_count_threshold = 2.0;
      return std::make_unique<MemtisPolicy>(config);
    }
    case PolicyKind::kNomad: {
      NomadConfig config;
      config.scan_period = policy_period;
      return std::make_unique<NomadPolicy>(config);
    }
    case PolicyKind::kDamon: {
      DamonConfig config;
      config.aggregation_interval = policy_period;
      config.sample_interval = std::max<Nanos>(policy_period / 10, kMillisecond);
      return std::make_unique<DamonPolicy>(config);
    }
  }
  return nullptr;
}

int Machine::EventLanesFor(const MachineConfig& config) {
  const int shards = std::clamp(config.shards, 1, kMaxShards);
  return shards <= 1 ? 1 : shards + 1;
}

Machine::Machine(MachineConfig config)
    : config_(config), events_(EventLanesFor(config)), rng_(config.seed) {
  memory_ = std::make_unique<HostMemory>(config.tiers);
  hyper_ = std::make_unique<Hypervisor>(memory_.get(), &events_);
  tracer_.set_enabled(config.capture_trace);
  // Installed before any VM exists so VM-internal units (PEBS) can bind it
  // at construction; disabled tracers make every record call a no-op.
  hyper_->set_tracer(&tracer_);
  // Like the tracer, the injector must exist before any VM so kernels and
  // PEBS units can bind it at construction. Empty plan -> no injector and
  // every hook stays on its legacy path.
  if (!config_.faults.empty()) {
    fault_injector_ = std::make_unique<FaultInjector>(config_.faults, config_.seed);
    hyper_->set_fault_injector(fault_injector_.get());
  }
  // Three-tier host: create the far swap device. Ordered after the injector
  // bind — the device consults it for swapfail draws. The device RNG stream
  // derives from the machine seed unless the bench pins one explicitly.
  if (static_cast<TierIndex>(config_.tiers.size()) > kSwapTier) {
    SwapDeviceConfig swap = config_.swap;
    if (swap.seed == 0) {
      swap.seed = config_.seed * 6007 + 13;
    }
    hyper_->EnableSwap(swap);
  }
  if (config_.overcommit.enabled) {
    overcommit_ = std::make_unique<OvercommitScheduler>(hyper_.get(), config_.overcommit);
    overcommit_->set_spill_request([this](int vm_i, int64_t delta_pages, Nanos now) {
      DemeterBalloon* balloon = demeter_balloons_[static_cast<size_t>(vm_i)].get();
      if (balloon == nullptr) {
        return false;  // No double balloon to arbitrate through.
      }
      balloon->RequestDelta(/*node=*/0, delta_pages, now);
      return true;
    });
    // Fair shares divide among VMs that actually hold resources here: booted
    // and not departed. Unbooted deferred VMs and extracted/departed VMs
    // drop out of the divisor; a VM that finished but still resides keeps
    // its share (its pages are still resident).
    overcommit_->set_resident([this](int vm_i) {
      return runtimes_[static_cast<size_t>(vm_i)].booted && !hyper_->vm(vm_i).departed();
    });
  }
}

Machine::~Machine() = default;

void Machine::SetCustomPolicy(int i, std::unique_ptr<TmmPolicy> policy) {
  DEMETER_CHECK(!ran_);
  custom_policies_[static_cast<size_t>(i)] = std::move(policy);
  results_[static_cast<size_t>(i)].policy = custom_policies_[static_cast<size_t>(i)]->name();
}

int Machine::AddVm(const VmSetup& setup) {
  DEMETER_CHECK(!ran_);
  return AddVmInternal(setup);
}

int Machine::AddVmInternal(const VmSetup& setup) {
  VmSetup resolved = setup;
  resolved.vm.id = static_cast<int>(setups_.size());
  resolved.vm.start_full = setup.provision != ProvisionMode::kStatic;
  resolved.vm.rng_seed = config_.seed * 7919 + static_cast<uint64_t>(resolved.vm.id);
  Vm& vm = hyper_->CreateVm(resolved.vm);

  setups_.push_back(resolved);
  workloads_.push_back(MakeWorkload(resolved.workload, resolved.footprint_bytes));
  policies_.push_back(nullptr);
  custom_policies_.push_back(nullptr);
  // Balloon devices exist from VM creation (so QoS managers can register
  // against them before Run); resize requests go out during provisioning.
  demeter_balloons_.push_back(resolved.provision == ProvisionMode::kDemeterBalloon
                                  ? std::make_unique<DemeterBalloon>(&vm)
                                  : nullptr);
  virtio_balloons_.push_back(resolved.provision == ProvisionMode::kVirtioBalloon
                                 ? std::make_unique<VirtioBalloon>(&vm)
                                 : nullptr);
  hotplugs_.push_back(nullptr);
  runtimes_.emplace_back();
  results_.emplace_back();

  // Workload-characteristic cache behaviour.
  vm.set_cache_hit_rate(workloads_.back()->CacheHitRate());
  return resolved.vm.id;
}

void Machine::ProvisionVm(int i, Nanos now) {
  const VmSetup& setup = setups_[static_cast<size_t>(i)];
  Vm& machine_vm = vm(i);
  switch (setup.provision) {
    case ProvisionMode::kStatic:
      return;
    case ProvisionMode::kVirtioBalloon: {
      // The host wants the VM trimmed from 200% to 100% of its memory; the
      // tier-blind balloon decides where the pages come from.
      virtio_balloons_[static_cast<size_t>(i)]->RequestDelta(
          static_cast<int64_t>(setup.vm.total_pages()), now);
      return;
    }
    case ProvisionMode::kDemeterBalloon: {
      DemeterBalloon* balloon = demeter_balloons_[static_cast<size_t>(i)].get();
      balloon->RequestResizeTo(0, setup.vm.fmem_pages(), now);
      balloon->RequestResizeTo(1, setup.vm.smem_pages(), now);
      return;
    }
    case ProvisionMode::kHotplug: {
      // Scaled block size: keep the paper's 128MiB-per-16GiB coarseness.
      const uint64_t block = std::max<uint64_t>(setup.vm.total_memory_bytes / 128, kPageSize);
      auto hotplug = std::make_unique<HotplugProvisioner>(&machine_vm, block);
      hotplug->ResizeTo(0, setup.vm.fmem_pages(), now);
      hotplug->ResizeTo(1, setup.vm.smem_pages(), now);
      hotplugs_[static_cast<size_t>(i)] = std::move(hotplug);
      return;
    }
  }
}

void Machine::InitPass(int i) {
  Vm& machine_vm = vm(i);
  VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
  Workload& wl = *workloads_[static_cast<size_t>(i)];
  if (!wl.NeedsInitPass()) {
    return;
  }
  // Touch the whole footprint in address order, round-robin over vCPUs —
  // application initialization, which fixes first-touch placement.
  int vcpu = 0;
  for (const Vma& vma : rt.process->space().vmas()) {
    if (!vma.tracked || vma.size() == 0) {
      continue;
    }
    for (uint64_t addr = vma.start; addr < vma.end; addr += kPageSize) {
      const AccessResult r = machine_vm.ExecuteAccess(vcpu, *rt.process, addr, /*is_write=*/true);
      machine_vm.vcpu(vcpu).clock_ns += r.ns;
      vcpu = (vcpu + 1) % machine_vm.num_vcpus();
    }
  }
}

InvariantReport Machine::CheckInvariants() {
  std::vector<InvariantChecker::VmView> views;
  views.reserve(static_cast<size_t>(num_vms()));
  for (int i = 0; i < num_vms(); ++i) {
    InvariantChecker::VmView view;
    view.departed = vm(i).departed();
    if (demeter_balloons_[static_cast<size_t>(i)] != nullptr) {
      const DemeterBalloon& balloon = *demeter_balloons_[static_cast<size_t>(i)];
      view.held_pages[0] = balloon.held_pages(0);
      view.held_pages[1] = balloon.held_pages(1);
    } else if (virtio_balloons_[static_cast<size_t>(i)] != nullptr) {
      // The tier-blind balloon tracks one flat page list; attribute each
      // held page to its guest node for per-node conservation.
      for (const PageNum gpa : virtio_balloons_[static_cast<size_t>(i)]->held()) {
        const int node = vm(i).kernel().NodeOfGpa(gpa);
        if (node >= 0 && node < 2) {
          ++view.held_pages[static_cast<size_t>(node)];
        }
      }
    } else if (hotplugs_[static_cast<size_t>(i)] != nullptr) {
      view.held_pages[0] = hotplugs_[static_cast<size_t>(i)]->unplugged_pages(0);
      view.held_pages[1] = hotplugs_[static_cast<size_t>(i)]->unplugged_pages(1);
    }
    views.push_back(view);
  }
  return InvariantChecker::Check(*hyper_, views);
}

void Machine::MaybeAuditInvariants(const char* where) {
  if (!config_.check_invariants) {
    return;
  }
  const InvariantReport report = CheckInvariants();
  DEMETER_CHECK(report.ok()) << "invariant violation (" << where << "): " << report.Join();
}

Nanos Machine::VmMinClock(int i) const {
  const Vm& machine_vm = hyper_->vm(i);
  Nanos min_clock = ~static_cast<Nanos>(0);
  for (int v = 0; v < machine_vm.num_vcpus(); ++v) {
    min_clock = std::min(min_clock, machine_vm.vcpu(v).now());
  }
  return min_clock;
}

Nanos Machine::MinActiveClock() const {
  if (active_count_ == 0) {
    return 0;
  }
  Nanos min_clock = ~static_cast<Nanos>(0);
  for (const Shard& shard : shards_) {
    min_clock = std::min(min_clock, shard.min_clock);  // ~0 when shard idle.
  }
  return min_clock;
}

void Machine::RefreshShard(int s) {
  Shard& shard = shards_[static_cast<size_t>(s)];
  Nanos min_clock = ~static_cast<Nanos>(0);
  for (const int i : shard.active) {
    min_clock = std::min(min_clock, VmMinClock(i));
  }
  shard.min_clock = min_clock;
}

void Machine::DrainEvents(Nanos until) {
  events_.RunUntil(until);
  const uint64_t fired = events_.TakeFiredLanes();
  if (fired == 0) {
    return;
  }
  // Host-lane events (bit 0) may advance any VM's clocks; shard-lane events
  // (bit s+1) only touch shard s — the lane-routing contract
  // Hypervisor::ScheduleVmEvent enforces.
  if ((fired & 1) != 0) {
    for (int s = 0; s < num_shards_; ++s) {
      RefreshShard(s);
    }
    return;
  }
  for (int s = 0; s < num_shards_; ++s) {
    if ((fired >> (s + 1)) & 1) {
      RefreshShard(s);
    }
  }
}

void Machine::ActivateVm(int i) {
  Shard& shard = shards_[static_cast<size_t>(ShardOf(i))];
  auto pending = std::lower_bound(shard.pending_boot.begin(), shard.pending_boot.end(), i);
  if (pending != shard.pending_boot.end() && *pending == i) {
    shard.pending_boot.erase(pending);
  }
  auto at = std::lower_bound(shard.active.begin(), shard.active.end(), i);
  DEMETER_CHECK(at == shard.active.end() || *at != i) << "vm " << i << " activated twice";
  shard.active.insert(at, i);
  ++active_count_;
  // Adding a member can only lower the cached minimum.
  shard.min_clock = std::min(shard.min_clock, VmMinClock(i));
}

void Machine::DeactivateVm(int i) {
  if (shards_.empty()) {
    return;  // Before StartRun no membership exists.
  }
  const int s = ShardOf(i);
  Shard& shard = shards_[static_cast<size_t>(s)];
  auto at = std::lower_bound(shard.active.begin(), shard.active.end(), i);
  if (at == shard.active.end() || *at != i) {
    return;
  }
  shard.active.erase(at);
  --active_count_;
  RefreshShard(s);  // Removing a member can raise the minimum.
}

void Machine::AccountOp(int i, int v, int ops_per_txn, double op_ns, Nanos clock_after) {
  VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
  VmRunResult& result = results_[static_cast<size_t>(i)];
  const VmSetup& setup = setups_[static_cast<size_t>(i)];

  int& in_txn = rt.ops_in_txn[static_cast<size_t>(v)];
  SimClock& latency = rt.txn_latency_ns[static_cast<size_t>(v)];
  latency += op_ns;
  if (++in_txn >= ops_per_txn) {
    in_txn = 0;
    result.txn_latency_ns.Record(static_cast<uint64_t>(latency.value()));
    latency = 0.0;
    ++rt.transactions;
    size_t bucket = static_cast<size_t>((clock_after - rt.start_time) / setup.timeline_bucket);
    if (bucket >= kMaxTimelineBuckets) {
      bucket = kMaxTimelineBuckets - 1;  // Overflow txns pile into the last bucket.
    }
    if (result.timeline.size() <= bucket) {
      result.timeline.resize(bucket + 1, 0);
    }
    ++result.timeline[bucket];
    if (rt.transactions >= setup.target_transactions) {
      FinishVm(i, clock_after);
    }
  }
}

void Machine::RunVmQuantum(int i) {
  if (!config_.batched_execution) {
    RunVmQuantumScalar(i);
    return;
  }
  Vm& machine_vm = vm(i);
  VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
  Workload& wl = *workloads_[static_cast<size_t>(i)];
  const VmSetup& setup = setups_[static_cast<size_t>(i)];
  const int ops_per_txn = wl.OpsPerTransaction();
  // Cap arithmetic below treats one-op transactions and "every op is a
  // transaction" (ops_per_txn <= 1) identically, matching the scalar check.
  const uint64_t opt = ops_per_txn > 1 ? static_cast<uint64_t>(ops_per_txn) : 1;

  for (int v = 0; v < machine_vm.num_vcpus() && !rt.finished; ++v) {
    Vcpu& vcpu = machine_vm.vcpu(v);
    const double quantum_end = vcpu.clock_ns + static_cast<double>(config_.quantum);
    auto& batch = rt.batches[static_cast<size_t>(v)];
    size_t& pos = rt.batch_pos[static_cast<size_t>(v)];
    while (vcpu.clock_ns < quantum_end && !rt.finished) {
      if (pos >= batch.size()) {
        batch.clear();
        pos = 0;
        wl.NextBatch(v, config_.batch_ops, rng_, &batch);
        DEMETER_CHECK(!batch.empty()) << "workload produced no ops";
      }
      // Chunk horizon: the next instant the scalar loop would have done
      // anything between ops — the context-switch tick or the quantum end.
      // ExecuteBatch runs ops until the clock crosses it (inclusive: the
      // crossing op executes, exactly like the scalar post-op checks).
      const double stop_at =
          std::min(quantum_end, static_cast<double>(vcpu.next_context_switch));
      // Never hand down ops past the transaction target: FinishVm snapshots
      // stats the moment the target transaction completes, so the op that
      // completes it must be the last op executed.
      size_t take = batch.size() - pos;
      const uint64_t txns_left = setup.target_transactions - rt.transactions;
      if (txns_left <= (take + opt - 1) / opt) {
        const uint64_t ops_left =
            txns_left * opt - static_cast<uint64_t>(rt.ops_in_txn[static_cast<size_t>(v)]);
        if (ops_left < take) {
          take = static_cast<size_t>(ops_left);
        }
      }
      if (rt.steps.size() < take) {
        rt.steps.resize(take);
      }
      const size_t done = machine_vm.ExecuteBatch(
          v, *rt.process, std::span<const AccessOp>(batch.data() + pos, take), stop_at,
          rt.steps.data());
      pos += done;
      // Per-op accounting with the container lookups hoisted to chunk scope:
      // this is AccountOp unrolled over the chunk (same operations, same
      // order), resolving rt/result/latency references once per chunk
      // instead of once per op.
      {
        VmRunResult& result = results_[static_cast<size_t>(i)];
        int& in_txn = rt.ops_in_txn[static_cast<size_t>(v)];
        SimClock& latency = rt.txn_latency_ns[static_cast<size_t>(v)];
        const BatchStep* steps = rt.steps.data();
        for (size_t k = 0; k < done; ++k) {
          latency += steps[k].ns;
          if (++in_txn >= ops_per_txn) {
            in_txn = 0;
            result.txn_latency_ns.Record(static_cast<uint64_t>(latency.value()));
            latency = 0.0;
            ++rt.transactions;
            const Nanos clock_after = steps[k].clock_after;
            size_t bucket =
                static_cast<size_t>((clock_after - rt.start_time) / setup.timeline_bucket);
            if (bucket >= kMaxTimelineBuckets) {
              bucket = kMaxTimelineBuckets - 1;  // Overflow txns pile into the last bucket.
            }
            if (result.timeline.size() <= bucket) {
              result.timeline.resize(bucket + 1, 0);
            }
            ++result.timeline[bucket];
            if (rt.transactions >= setup.target_transactions) {
              FinishVm(i, clock_after);
            }
          }
        }
      }
      // Timer tick / scheduler: context switches drain PEBS (Demeter hook).
      // Runs after the chunk like the scalar loop runs it after each op —
      // the chunk was cut at the tick, so at most the final op crossed it.
      if (vcpu.clock_ns >= static_cast<double>(vcpu.next_context_switch)) {
        vcpu.clock_ns += machine_vm.OnContextSwitch(v, vcpu.now());
        vcpu.next_context_switch += machine_vm.config().context_switch_period;
      }
    }
  }
}

void Machine::RunVmQuantumScalar(int i) {
  Vm& machine_vm = vm(i);
  VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
  Workload& wl = *workloads_[static_cast<size_t>(i)];
  const int ops_per_txn = wl.OpsPerTransaction();

  for (int v = 0; v < machine_vm.num_vcpus() && !rt.finished; ++v) {
    Vcpu& vcpu = machine_vm.vcpu(v);
    const double quantum_end = vcpu.clock_ns + static_cast<double>(config_.quantum);
    auto& batch = rt.batches[static_cast<size_t>(v)];
    size_t& pos = rt.batch_pos[static_cast<size_t>(v)];
    while (vcpu.clock_ns < quantum_end && !rt.finished) {
      if (pos >= batch.size()) {
        batch.clear();
        pos = 0;
        wl.NextBatch(v, config_.batch_ops, rng_, &batch);
        DEMETER_CHECK(!batch.empty()) << "workload produced no ops";
      }
      const AccessOp op = batch[pos++];
      const AccessResult r = machine_vm.ExecuteAccess(v, *rt.process, op.gva, op.is_write);
      vcpu.clock_ns += r.ns;
      AccountOp(i, v, ops_per_txn, r.ns, vcpu.now());
      // Timer tick / scheduler: context switches drain PEBS (Demeter hook).
      if (vcpu.clock_ns >= static_cast<double>(vcpu.next_context_switch)) {
        vcpu.clock_ns += machine_vm.OnContextSwitch(v, vcpu.now());
        vcpu.next_context_switch += machine_vm.config().context_switch_period;
      }
    }
  }
}

void Machine::FinishVm(int i, Nanos now) {
  VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
  if (rt.finished) {
    return;
  }
  rt.finished = true;
  DeactivateVm(i);
  Vm& machine_vm = vm(i);
  if (policies_[static_cast<size_t>(i)] != nullptr) {
    policies_[static_cast<size_t>(i)]->Stop();
  }
  VmRunResult& result = results_[static_cast<size_t>(i)];
  result.workload = setups_[static_cast<size_t>(i)].workload;
  result.policy = policies_[static_cast<size_t>(i)] != nullptr
                      ? policies_[static_cast<size_t>(i)]->name()
                      : PolicyKindName(setups_[static_cast<size_t>(i)].policy);
  result.transactions = rt.transactions;
  result.elapsed_s = ToSeconds(now - rt.start_time);
  result.tlb = machine_vm.AggregateTlbStats();
  result.tlb.Merge(rt.migrated_tlb);  // Whole-life stats for migrated VMs.
  result.vm_stats = machine_vm.stats();
  result.mgmt = machine_vm.mgmt_account();
  result.timeline_bucket = setups_[static_cast<size_t>(i)].timeline_bucket;
  // swap_accesses is forever zero on two-tier hosts, so the fraction is
  // unchanged there; on three-tier hosts far accesses dilute it.
  const uint64_t mem_accesses = result.vm_stats.fmem_accesses + result.vm_stats.smem_accesses +
                                result.vm_stats.swap_accesses;
  result.fmem_access_fraction =
      mem_accesses == 0
          ? 0.0
          : static_cast<double>(result.vm_stats.fmem_accesses) / static_cast<double>(mem_accesses);
  // Depart before snapshotting so the result metrics include the lifecycle
  // accounting (departures, reclaimed pages) of the removal itself.
  if (setups_[static_cast<size_t>(i)].depart_on_finish) {
    RemoveVm(i, now);
  }
  // Prefix scan over the owning shard's registry only — the full-registry
  // snapshot-then-filter this replaces made every finish O(total metrics),
  // which is quadratic across a dense host's worth of finishing VMs.
  result.metrics =
      VmRegistry(i).SnapshotPrefix("vm" + std::to_string(i) + "/", /*strip=*/true);
}

void Machine::RemoveVm(int i, Nanos now) {
  VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
  Vm& machine_vm = vm(i);
  DEMETER_CHECK(rt.booted) << "removing never-booted vm " << i;
  DEMETER_CHECK(!machine_vm.departed()) << "vm " << i << " removed twice";
  if (policies_[static_cast<size_t>(i)] != nullptr) {
    policies_[static_cast<size_t>(i)]->Stop();
  }
  machine_vm.set_departed(true);
  const Hypervisor::ReclaimResult reclaimed = hyper_->ReclaimVm(machine_vm);
  rt.finished = true;  // A departed VM never runs again.
  DeactivateVm(i);
  ++rt.lifecycle.departures;
  rt.lifecycle.depart_ns = now;
  rt.lifecycle.reclaimed_gpt_pages += reclaimed.gpt_unmapped;
  rt.lifecycle.reclaimed_gpa_pages += reclaimed.gpa_freed;
  rt.lifecycle.reclaimed_ept_pages += reclaimed.ept_unbacked;
  if (tracer_.enabled()) {
    tracer_.Instant("lifecycle", "depart", now, i, 0,
                    TraceArgs().Add("ept_pages", reclaimed.ept_unbacked).str());
  }
  MaybeAuditInvariants("post-remove");
}

uint64_t Machine::KillVm(int i, Nanos now) {
  VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
  DEMETER_CHECK(rt.booted && !rt.finished) << "killing inactive vm " << i;
  // A kill is a fail-stop: the transactions completed so far are the work
  // the fleet loses (the restart, if any, begins from zero).
  const uint64_t lost = rt.transactions;
  ++rt.lifecycle.killed;
  rt.lifecycle.transactions_lost += lost;
  if (tracer_.enabled()) {
    tracer_.Instant("lifecycle", "kill", now, i, 0,
                    TraceArgs().Add("transactions_lost", lost).str());
  }
  RemoveVm(i, now);
  return lost;
}

void Machine::BootVm(int i, Nanos at) {
  VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
  DEMETER_CHECK(!rt.booted) << "vm " << i << " booted twice";
  rt.booted = true;
  ++rt.lifecycle.boots;
  rt.lifecycle.boot_ns = at;
  Vm& machine_vm = vm(i);
  for (int v = 0; v < machine_vm.num_vcpus(); ++v) {
    Vcpu& vcpu = machine_vm.vcpu(v);
    vcpu.clock_ns = static_cast<double>(at);
    vcpu.next_context_switch = at + machine_vm.config().context_switch_period;
  }
  if (tracer_.enabled()) {
    tracer_.Instant("lifecycle", "boot", at, i, 0, "");
  }
  ProvisionVm(i, at);
  // Drain the provisioning request/completion chain (same bounded horizon
  // as the phase-1 drain) before the guest starts touching memory. The VM
  // is not in its shard's active list yet, so the drain refresh reads only
  // already-running VMs.
  event_horizon_ = std::max(event_horizon_, at + 10 * kMillisecond);
  DrainEvents(event_horizon_);
  MaybeAuditInvariants("post-boot");

  rt.process = &machine_vm.kernel().CreateProcess();
  workloads_[static_cast<size_t>(i)]->Setup(*rt.process, rng_);
  InitPass(i);
  const int vcpus = machine_vm.num_vcpus();
  rt.batches.resize(static_cast<size_t>(vcpus));
  rt.batch_pos.assign(static_cast<size_t>(vcpus), 0);
  rt.ops_in_txn.assign(static_cast<size_t>(vcpus), 0);
  rt.txn_latency_ns.assign(static_cast<size_t>(vcpus), SimClock{});

  // Align this VM's vCPUs to their own max (init-pass skew), mirroring the
  // phase-3 alignment boot-time VMs get.
  double start = 0.0;
  for (int v = 0; v < vcpus; ++v) {
    start = std::max(start, machine_vm.vcpu(v).clock_ns.value());
  }
  rt.start_time = static_cast<Nanos>(start);
  for (int v = 0; v < vcpus; ++v) {
    Vcpu& vcpu = machine_vm.vcpu(v);
    vcpu.clock_ns = start;
    vcpu.next_context_switch =
        static_cast<Nanos>(start) + machine_vm.config().context_switch_period;
  }
  machine_vm.mgmt_account().Clear();

  auto policy = custom_policies_[static_cast<size_t>(i)] != nullptr
                    ? std::move(custom_policies_[static_cast<size_t>(i)])
                    : MakePolicy(setups_[static_cast<size_t>(i)].policy,
                                 setups_[static_cast<size_t>(i)].demeter,
                                 setups_[static_cast<size_t>(i)].policy_period);
  policy->Attach(machine_vm, *rt.process, static_cast<Nanos>(start));
  policies_[static_cast<size_t>(i)] = std::move(policy);
  // The machine-wide registration pass already ran (phase 4); register the
  // late policy's counters now.
  policies_[static_cast<size_t>(i)]->RegisterMetrics(
      MetricScope(&VmRegistry(i), "vm" + std::to_string(i)).Sub("policy"));
  // Final clocks are set; hand the VM to its shard.
  ActivateVm(i);
}

void Machine::Run() {
  StartRun();
  while (StepUntil(kNoHorizon)) {
  }
  FinishRun();
}

void Machine::StartRun() {
  DEMETER_CHECK(!ran_);
  ran_ = true;

  // Shard setup: block-contiguous vm-id ownership, sized from the final
  // pre-run VM count (mid-run admissions clamp into the last shard). The
  // hypervisor routes VM-bound timers to the owner's event lane from here
  // on; metric registration below lands in the owners' registries.
  num_shards_ = std::clamp(config_.shards, 1, kMaxShards);
  shard_block_ = std::max(1, (num_vms() + num_shards_ - 1) / num_shards_);
  shards_.resize(static_cast<size_t>(num_shards_));
  hyper_->ConfigureVmEventLanes(num_shards_, shard_block_);

  // Tier-shrink windows (if the fault plan schedules any) live on the same
  // event queue as everything else; arm them before time starts moving.
  hyper_->ArmTierShrink();
  if (overcommit_ != nullptr) {
    overcommit_->Start();
  }

  // Phase 1: provisioning. Balloon request/completion chains finish within
  // microseconds of virtual time; a bounded horizon (rather than draining
  // until empty) coexists with unrelated periodic timers (e.g. a QoS
  // manager) that re-arm themselves forever. VMs with a deferred boot_at
  // skip phases 1-4 entirely; BootVm replays them mid-run.
  for (int i = 0; i < num_vms(); ++i) {
    if (setups_[static_cast<size_t>(i)].boot_at > 0) {
      continue;
    }
    runtimes_[static_cast<size_t>(i)].booted = true;
    ++runtimes_[static_cast<size_t>(i)].lifecycle.boots;
    ProvisionVm(i, /*now=*/0);
  }
  events_.RunUntil(10 * kMillisecond);
  event_horizon_ = 10 * kMillisecond;
  MaybeAuditInvariants("post-provision");

  // Phase 2: workload setup + init pass.
  for (int i = 0; i < num_vms(); ++i) {
    VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
    if (!rt.booted) {
      continue;
    }
    rt.process = &vm(i).kernel().CreateProcess();
    workloads_[static_cast<size_t>(i)]->Setup(*rt.process, rng_);
    InitPass(i);
    const int vcpus = vm(i).num_vcpus();
    rt.batches.resize(static_cast<size_t>(vcpus));
    rt.batch_pos.assign(static_cast<size_t>(vcpus), 0);
    rt.ops_in_txn.assign(static_cast<size_t>(vcpus), 0);
    rt.txn_latency_ns.assign(static_cast<size_t>(vcpus), SimClock{});
  }

  // Phase 3: align all clocks so VMs contend from the same instant.
  double global_start = 0.0;
  for (int i = 0; i < num_vms(); ++i) {
    if (!runtimes_[static_cast<size_t>(i)].booted) {
      continue;
    }
    for (int v = 0; v < vm(i).num_vcpus(); ++v) {
      global_start = std::max(global_start, vm(i).vcpu(v).clock_ns.value());
    }
  }
  for (int i = 0; i < num_vms(); ++i) {
    VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
    if (!rt.booted) {
      continue;
    }
    rt.start_time = static_cast<Nanos>(global_start);
    for (int v = 0; v < vm(i).num_vcpus(); ++v) {
      Vcpu& vcpu = vm(i).vcpu(v);
      vcpu.clock_ns = global_start;
      vcpu.next_context_switch =
          static_cast<Nanos>(global_start) + vm(i).config().context_switch_period;
    }
    vm(i).mgmt_account().Clear();  // Exclude provisioning/init overheads.
  }

  // Phase 4: attach policies (custom instances take precedence).
  for (int i = 0; i < num_vms(); ++i) {
    if (!runtimes_[static_cast<size_t>(i)].booted) {
      continue;
    }
    auto policy = custom_policies_[static_cast<size_t>(i)] != nullptr
                      ? std::move(custom_policies_[static_cast<size_t>(i)])
                      : MakePolicy(setups_[static_cast<size_t>(i)].policy,
                                   setups_[static_cast<size_t>(i)].demeter,
                                   setups_[static_cast<size_t>(i)].policy_period);
    policy->Attach(vm(i), *runtimes_[static_cast<size_t>(i)].process,
                   static_cast<Nanos>(global_start));
    policies_[static_cast<size_t>(i)] = std::move(policy);
  }
  RegisterAllMetrics();

  // Shard membership: booted VMs are active, deferred boots pend with their
  // owner. Ascending vm-id insertion keeps both lists sorted, so shard-major
  // iteration is global vm-id order.
  active_count_ = 0;
  for (int i = 0; i < num_vms(); ++i) {
    Shard& shard = shards_[static_cast<size_t>(ShardOf(i))];
    const VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
    if (rt.booted && !rt.finished) {
      shard.active.push_back(i);
      ++active_count_;
    } else if (!rt.booted) {
      shard.pending_boot.push_back(i);
    }
  }
  for (int s = 0; s < num_shards_; ++s) {
    RefreshShard(s);
  }
  events_.TakeFiredLanes();  // Phases 1-4 predate membership; start clean.
}

bool Machine::StepUntil(Nanos horizon) {
  // Phase 5: main loop — lock-stepped quanta + due events. Deferred VMs
  // join once global virtual time reaches their boot_at (or immediately
  // past the last event horizon when the machine is otherwise idle).
  // The body is Run()'s original loop verbatim; the only addition is the
  // barrier check, which never fires at kNoHorizon — so Run() is
  // byte-identical to the pre-split code, and a Cluster stepping a host in
  // epoch slices replays exactly the same iterations.
  for (;;) {
    bool any_active = active_count_ > 0;
    // Boot scan over the per-shard deferred lists, shard-major — global
    // vm-id order, exactly the old full-VM scan without the O(N) walk.
    for (int s = 0; s < num_shards_; ++s) {
      if (shards_[static_cast<size_t>(s)].pending_boot.empty()) {
        continue;
      }
      // BootVm erases the id from the list; iterate a scratch copy.
      sweep_ = shards_[static_cast<size_t>(s)].pending_boot;
      for (const int i : sweep_) {
        VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
        if (rt.booted || rt.finished) {
          continue;
        }
        const Nanos due = setups_[static_cast<size_t>(i)].boot_at;
        if (!any_active) {
          BootVm(i, std::max(due, event_horizon_));
          any_active = true;
        } else if (MinActiveClock() >= due) {
          BootVm(i, MinActiveClock());
        }
      }
    }
    if (!any_active) {
      return false;
    }
    if (MinActiveClock() >= horizon) {
      return true;  // Barrier reached with VMs still active.
    }
    // Quanta, shard-major over the active lists — again global vm-id order.
    // Each shard's cached min clock is recomputed as its VMs run; a VM that
    // finishes mid-quantum drops out of `active` (hence the scratch copy)
    // and out of the recomputed minimum.
    for (int s = 0; s < num_shards_; ++s) {
      Shard& shard = shards_[static_cast<size_t>(s)];
      if (shard.active.empty()) {
        continue;
      }
      sweep_ = shard.active;
      Nanos min_clock = ~static_cast<Nanos>(0);
      for (const int i : sweep_) {
        const VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
        if (rt.booted && !rt.finished) {
          RunVmQuantum(i);
          if (!rt.finished) {
            min_clock = std::min(min_clock, VmMinClock(i));
          }
        }
      }
      shard.min_clock = min_clock;
    }
    const Nanos step_horizon = MinActiveClock();
    event_horizon_ = std::max(event_horizon_, step_horizon);
    DrainEvents(step_horizon);
    MaybeAuditInvariants("main-loop");
  }
}

void Machine::FinishRun() { MaybeAuditInvariants("end-of-run"); }

void Machine::RegisterAllMetrics() {
  hyper_->RegisterMetrics(MetricScope(&registry_, "host"));
  if (overcommit_ != nullptr) {
    overcommit_->RegisterMetrics(MetricScope(&registry_, "host").Sub("overcommit"));
  }
  for (int i = 0; i < num_vms(); ++i) {
    RegisterVmMetricsFor(i);
  }
}

void Machine::RegisterVmMetricsFor(int i) {
  // Into the owning shard's registry: registration and per-VM snapshots
  // never contend on (or scan) the host registry.
  MetricScope scope(&VmRegistry(i), "vm" + std::to_string(i));
  vm(i).RegisterMetrics(scope);
  if (policies_[static_cast<size_t>(i)] != nullptr) {
    policies_[static_cast<size_t>(i)]->RegisterMetrics(scope.Sub("policy"));
  }
  if (demeter_balloons_[static_cast<size_t>(i)] != nullptr) {
    demeter_balloons_[static_cast<size_t>(i)]->RegisterMetrics(scope.Sub("balloon"));
  }
  if (fault_injector_ != nullptr) {
    fault_injector_->RegisterVmMetrics(scope.Sub("fault"), i);
  }
  // Lifecycle counters are unconditional: all-zero (beyond boots=1) for
  // VMs that boot with the machine and never depart. `runtimes_` is a deque
  // precisely so these cell addresses stay stable when AdmitVm/AdoptVm grow
  // it mid-run.
  MetricScope life = scope.Sub("lifecycle");
  const LifecycleStats& ls = runtimes_[static_cast<size_t>(i)].lifecycle;
  life.RegisterCounter("boots", &ls.boots);
  life.RegisterCounter("departures", &ls.departures);
  life.RegisterCounter("boot_ns", &ls.boot_ns);
  life.RegisterCounter("depart_ns", &ls.depart_ns);
  life.RegisterCounter("reclaimed_gpt_pages", &ls.reclaimed_gpt_pages);
  life.RegisterCounter("reclaimed_gpa_pages", &ls.reclaimed_gpa_pages);
  life.RegisterCounter("reclaimed_ept_pages", &ls.reclaimed_ept_pages);
  life.RegisterCounter("migrated_in", &ls.migrated_in);
  life.RegisterCounter("migrated_out", &ls.migrated_out);
  life.RegisterCounter("killed", &ls.killed);
  life.RegisterCounter("restarts", &ls.restarts);
  life.RegisterCounter("transactions_lost", &ls.transactions_lost);
}

int Machine::AdmitVm(const VmSetup& setup, Nanos at, bool restarted) {
  DEMETER_CHECK(ran_) << "AdmitVm before StartRun (use AddVm)";
  const int i = AddVmInternal(setup);
  if (restarted) {
    ++runtimes_[static_cast<size_t>(i)].lifecycle.restarts;
  }
  // Policy metrics are registered by BootVm (policies attach there); the
  // registration order for this VM therefore matches the deferred-boot path.
  RegisterVmMetricsFor(i);
  BootVm(i, at);
  return i;
}

MigratedVm Machine::ExtractVm(int i, Nanos now) {
  VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
  Vm& machine_vm = vm(i);
  DEMETER_CHECK(rt.booted && !rt.finished) << "extracting inactive vm " << i;
  DEMETER_CHECK(!machine_vm.departed()) << "extracting departed vm " << i;

  MigratedVm out;
  out.setup = setups_[static_cast<size_t>(i)];
  out.image = CaptureVmImage(machine_vm, *rt.process);
  out.stats = machine_vm.stats();
  out.mgmt = machine_vm.mgmt_account();
  out.tlb = machine_vm.AggregateTlbStats();
  out.tlb.Merge(rt.migrated_tlb);
  const int vcpus = machine_vm.num_vcpus();
  out.vcpu_clock_ns.reserve(static_cast<size_t>(vcpus));
  out.next_context_switch.reserve(static_cast<size_t>(vcpus));
  for (int v = 0; v < vcpus; ++v) {
    out.vcpu_clock_ns.push_back(machine_vm.vcpu(v).clock_ns.value());
    out.next_context_switch.push_back(machine_vm.vcpu(v).next_context_switch);
  }
  out.workload = std::move(workloads_[static_cast<size_t>(i)]);
  out.batches = std::move(rt.batches);
  out.batch_pos = std::move(rt.batch_pos);
  out.ops_in_txn = std::move(rt.ops_in_txn);
  out.txn_latency_ns = std::move(rt.txn_latency_ns);
  out.transactions = rt.transactions;
  out.start_time = rt.start_time;
  out.txn_latency_hist = std::move(results_[static_cast<size_t>(i)].txn_latency_ns);
  out.timeline = std::move(results_[static_cast<size_t>(i)].timeline);

  // Drain this host like a departure: the departed-VM emptiness audit must
  // hold here from now on. The Vm object stays alive for late events.
  if (policies_[static_cast<size_t>(i)] != nullptr) {
    policies_[static_cast<size_t>(i)]->Stop();
  }
  machine_vm.set_departed(true);
  const Hypervisor::ReclaimResult reclaimed = hyper_->ReclaimVm(machine_vm);
  rt.finished = true;
  DeactivateVm(i);
  ++rt.lifecycle.migrated_out;
  rt.lifecycle.depart_ns = now;
  rt.lifecycle.reclaimed_gpt_pages += reclaimed.gpt_unmapped;
  rt.lifecycle.reclaimed_gpa_pages += reclaimed.gpa_freed;
  rt.lifecycle.reclaimed_ept_pages += reclaimed.ept_unbacked;
  if (tracer_.enabled()) {
    tracer_.Instant("lifecycle", "migrate_out", now, i, 0,
                    TraceArgs().Add("pages", out.image.num_pages()).str());
  }
  MaybeAuditInvariants("post-extract");
  return out;
}

int Machine::AdoptVm(MigratedVm&& moved, Nanos now, double extra_downtime_ns) {
  DEMETER_CHECK(ran_) << "AdoptVm before StartRun";
  VmSetup setup = moved.setup;
  // Balloon/hotplug provisioning state does not travel: the VM arrives at
  // its target composition and is backed statically on this host.
  setup.provision = ProvisionMode::kStatic;
  setup.boot_at = 0;
  const int i = AddVmInternal(setup);
  VmRuntime& rt = runtimes_[static_cast<size_t>(i)];
  Vm& machine_vm = vm(i);
  rt.booted = true;
  ++rt.lifecycle.migrated_in;
  rt.lifecycle.boot_ns = now;

  rt.process = &machine_vm.kernel().CreateProcess();
  rt.process->space().RestoreLayout(moved.image.vmas, moved.image.brk, moved.image.mmap_floor);
  double restore_ns = 0.0;
  RestoreVmImage(machine_vm, *rt.process, moved.image, now, &restore_ns);

  machine_vm.stats() = moved.stats;
  machine_vm.mgmt_account() = moved.mgmt;
  rt.migrated_tlb = moved.tlb;
  workloads_[static_cast<size_t>(i)] = std::move(moved.workload);
  machine_vm.set_cache_hit_rate(workloads_[static_cast<size_t>(i)]->CacheHitRate());
  rt.batches = std::move(moved.batches);
  rt.batch_pos = std::move(moved.batch_pos);
  rt.ops_in_txn = std::move(moved.ops_in_txn);
  rt.txn_latency_ns = std::move(moved.txn_latency_ns);
  rt.transactions = moved.transactions;
  rt.start_time = moved.start_time;
  results_[static_cast<size_t>(i)].txn_latency_ns = std::move(moved.txn_latency_hist);
  results_[static_cast<size_t>(i)].timeline = std::move(moved.timeline);

  // Downtime = the final stop-and-copy transfer plus the rebuild work just
  // charged; every vCPU resumes that far past its source clock.
  const double downtime_ns = extra_downtime_ns + restore_ns;
  machine_vm.mgmt_account().Charge(TmmStage::kMigration, static_cast<Nanos>(downtime_ns));
  const int vcpus = machine_vm.num_vcpus();
  DEMETER_CHECK_EQ(static_cast<size_t>(vcpus), moved.vcpu_clock_ns.size());
  double resume = 0.0;
  for (int v = 0; v < vcpus; ++v) {
    Vcpu& vcpu = machine_vm.vcpu(v);
    vcpu.clock_ns = moved.vcpu_clock_ns[static_cast<size_t>(v)] + downtime_ns;
    vcpu.next_context_switch = moved.next_context_switch[static_cast<size_t>(v)] +
                               static_cast<Nanos>(downtime_ns);
    resume = std::max(resume, vcpu.clock_ns.value());
  }
  if (tracer_.enabled()) {
    tracer_.Instant("lifecycle", "migrate_in", now, i, 0,
                    TraceArgs().Add("pages", moved.image.num_pages()).str());
  }

  // Fresh policy instance on the destination (classification restarts cold,
  // as a real migration would): attach, then register this VM's metrics.
  auto policy = MakePolicy(setup.policy, setup.demeter, setup.policy_period);
  policy->Attach(machine_vm, *rt.process, static_cast<Nanos>(resume));
  policies_[static_cast<size_t>(i)] = std::move(policy);
  RegisterVmMetricsFor(i);
  // Activate before the drain below: its refresh must see this VM in case
  // the fresh policy's first timer lands inside the drain horizon.
  ActivateVm(i);

  // Drain any events the restore scheduled (e.g. swap writebacks), bounded
  // like a mid-run boot.
  event_horizon_ = std::max(event_horizon_, now + 10 * kMillisecond);
  DrainEvents(event_horizon_);
  MaybeAuditInvariants("post-adopt");
  return i;
}

MetricSnapshot Machine::SnapshotMetrics() const {
  std::vector<MetricSnapshot> parts;
  parts.reserve(shards_.size() + 1);
  parts.push_back(registry_.Snapshot());
  for (const Shard& shard : shards_) {
    parts.push_back(shard.registry.Snapshot());
  }
  // Names are disjoint ("host/..." vs per-VM "vm<i>/..." trees split by
  // owner), so the merged, name-sorted result is byte-identical to the old
  // single flat registry.
  return MergeMetricSnapshots(std::move(parts));
}

double Machine::TotalMgmtCores() const {
  double total = 0.0;
  for (int i = 0; i < num_vms(); ++i) {
    total += results_[static_cast<size_t>(i)].MgmtCores();
  }
  return total;
}

double Machine::MeanElapsedSeconds() const {
  double total = 0.0;
  for (int i = 0; i < num_vms(); ++i) {
    total += results_[static_cast<size_t>(i)].elapsed_s;
  }
  return num_vms() == 0 ? 0.0 : total / num_vms();
}

}  // namespace demeter
