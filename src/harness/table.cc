#include "src/harness/table.h"

#include <cstdio>

#include "src/base/logging.h"

namespace demeter {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DEMETER_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Fmt(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(value));
  return buf;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');  // %-*s pads every cell.
      out += c + 1 == row.size() ? "\n" : "  ";
    }
  };
  append_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  out.append(total >= 2 ? total - 2 : 0, '-');
  out += '\n';
  for (const auto& row : rows_) {
    append_row(row);
  }
  return out;
}

void PrintSeries(const std::string& title, const std::vector<std::string>& labels,
                 const std::vector<double>& values, const std::string& unit) {
  std::printf("%s\n", title.c_str());
  for (size_t i = 0; i < labels.size() && i < values.size(); ++i) {
    std::printf("  %-24s %12.3f %s\n", labels[i].c_str(), values[i], unit.c_str());
  }
}

}  // namespace demeter
